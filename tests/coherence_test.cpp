// Unit tests for the CoherenceProtocol against a scripted fake transport —
// no engine, no simulation.  Each scenario pins one protocol decision:
// revalidation vs payload, upgrade-in-place, conversion caching, multicast
// coalescing, batched fetches, and the typed (object, machine) key.
#include <gtest/gtest.h>

#include <vector>

#include "jade/store/coherence.hpp"

namespace jade {
namespace {

/// Fixed-latency, fixed-bandwidth transport that logs every call.  The
/// clock never advances on its own (the protocol is synchronous); tests
/// move it explicitly when they need distinct departure stamps.
class FakeTransport final : public CoherenceTransport {
 public:
  struct Call {
    bool multicast = false;
    MachineId from = -1;
    MachineId to = -1;  ///< -1 for multicasts
    std::size_t bytes = 0;
  };

  SimTime now() const override { return now_; }
  void advance(SimTime dt) { now_ += dt; }

  SimTime unicast(MachineId from, MachineId to, std::size_t bytes,
                  SimTime at) override {
    calls.push_back({false, from, to, bytes});
    return at + kLatency + static_cast<SimTime>(bytes) / kBytesPerSecond;
  }
  SimTime multicast(MachineId from, std::span<const MachineId> targets,
                    std::size_t bytes, SimTime at) override {
    EXPECT_FALSE(targets.empty());
    calls.push_back({true, from, -1, bytes});
    return at + kLatency + static_cast<SimTime>(bytes) / kBytesPerSecond;
  }

  std::vector<Call> calls;

 private:
  static constexpr SimTime kLatency = 1e-3;
  static constexpr SimTime kBytesPerSecond = 1e6;
  SimTime now_ = 0;
};

/// A protocol instance over `machines` machines with per-machine endians
/// (defaulting to all-little, which disables conversion).
struct Harness {
  explicit Harness(int machines, std::vector<Endian> endians = {},
                   CoherenceConfig config = {})
      : directory(machines) {
    if (endians.empty())
      endians.assign(static_cast<std::size_t>(machines), Endian::kLittle);
    protocol = std::make_unique<CoherenceProtocol>(
        transport, directory, objects, std::move(endians), config, stats,
        /*tracer=*/nullptr);
  }

  ObjectId add_object(std::size_t doubles, MachineId home) {
    const ObjectId id = objects.add(TypeDescriptor::array_of<double>(doubles),
                                    "obj" + std::to_string(objects.count()));
    directory.add_object(objects.info(id), home);
    return id;
  }

  FakeTransport transport;
  ObjectTable objects;
  ObjectDirectory directory;
  RuntimeStats stats;
  std::unique_ptr<CoherenceProtocol> protocol;
};

TEST(Coherence, CopyLeavesOwnerInPlace) {
  Harness h(2);
  const ObjectId obj = h.add_object(64, /*home=*/0);
  const SimTime at = h.protocol->transfer(obj, 1, /*exclusive=*/false);
  EXPECT_GT(at, 0.0);
  EXPECT_EQ(h.directory.owner(obj), 0);
  EXPECT_TRUE(h.directory.present(obj, 1));
  EXPECT_EQ(h.stats.object_copies, 1u);
  EXPECT_EQ(h.stats.messages, 2u);  // request + data
  EXPECT_EQ(h.stats.payload_bytes, 64u * sizeof(double));
  EXPECT_DOUBLE_EQ(h.protocol->available_at(obj, 1), at);
}

TEST(Coherence, RevalidationSkipsPayload) {
  Harness h(3);
  const ObjectId obj = h.add_object(64, /*home=*/0);
  // Replicate to machine 1, then move the object to 2: machine 1's replica
  // is dropped but its recorded data version still matches.
  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  h.protocol->transfer(obj, 2, /*exclusive=*/true);
  ASSERT_FALSE(h.directory.present(obj, 1));
  ASSERT_TRUE(h.directory.reusable(obj, 1));

  const auto baseline = h.stats;
  const std::size_t calls_before = h.transport.calls.size();
  h.protocol->transfer(obj, 1, /*exclusive=*/false);

  EXPECT_EQ(h.stats.replicas_reused, baseline.replicas_reused + 1);
  EXPECT_EQ(h.stats.object_copies, baseline.object_copies);  // no payload
  EXPECT_EQ(h.stats.payload_bytes, baseline.payload_bytes);
  EXPECT_EQ(h.stats.messages, baseline.messages + 2);  // request + grant
  EXPECT_EQ(h.stats.bytes_avoided,
            baseline.bytes_avoided + 64 * sizeof(double));
  EXPECT_EQ(h.transport.calls.size(), calls_before + 2);
  EXPECT_TRUE(h.directory.present(obj, 1));
}

TEST(Coherence, StaleReplicaRepaysPayloadAfterWrite) {
  CoherenceConfig cfg;
  Harness h(3, {}, cfg);
  const ObjectId obj = h.add_object(64, /*home=*/0);
  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  h.protocol->transfer(obj, 2, /*exclusive=*/true);
  // The writer dirties the bytes: machine 1's recorded version no longer
  // matches, so its next read pays the full payload again.
  std::vector<ObjectId> dirtied;
  h.protocol->first_write_invalidate(2, obj, dirtied);
  ASSERT_FALSE(h.directory.reusable(obj, 1));

  const auto baseline = h.stats;
  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  EXPECT_EQ(h.stats.replicas_reused, baseline.replicas_reused);
  EXPECT_EQ(h.stats.object_copies, baseline.object_copies + 1);
  EXPECT_EQ(h.stats.payload_bytes,
            baseline.payload_bytes + 64 * sizeof(double));
}

TEST(Coherence, ExclusiveUpgradeInPlace) {
  Harness h(2);
  const ObjectId obj = h.add_object(128, /*home=*/0);
  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  ASSERT_TRUE(h.directory.present(obj, 1));

  const auto baseline = h.stats;
  h.protocol->transfer(obj, 1, /*exclusive=*/true);
  // Destination already holds the current bytes: ownership travels as a
  // request/grant pair, no payload moves.
  EXPECT_EQ(h.directory.owner(obj), 1);
  EXPECT_EQ(h.stats.object_moves, baseline.object_moves);
  EXPECT_EQ(h.stats.payload_bytes, baseline.payload_bytes);
  EXPECT_EQ(h.stats.replicas_reused, baseline.replicas_reused + 1);
  EXPECT_EQ(h.stats.messages, baseline.messages + 2);
}

TEST(Coherence, ConversionCacheHitsUntilDirtied) {
  // Machine 0 little-endian, 1 and 2 big-endian: every payload 0->{1,2}
  // crosses byte orders.
  Harness h(3, {Endian::kLittle, Endian::kBig, Endian::kBig});
  const std::size_t n = 96;
  const ObjectId obj = h.add_object(n, /*home=*/0);

  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  EXPECT_EQ(h.stats.scalars_converted, n);
  EXPECT_EQ(h.stats.conversions_cached, 0u);

  // Second cross-endian copy of the same clean data: cache hit.
  h.protocol->transfer(obj, 2, /*exclusive=*/false);
  EXPECT_EQ(h.stats.scalars_converted, n);
  EXPECT_EQ(h.stats.conversions_cached, 1u);

  // A write opens a new data version; the cached image is stale.
  std::vector<ObjectId> dirtied;
  h.protocol->first_write_invalidate(0, obj, dirtied);
  ASSERT_FALSE(h.directory.present(obj, 1));
  h.protocol->transfer(obj, 1, /*exclusive=*/false);
  EXPECT_EQ(h.stats.scalars_converted, 2 * n);
  EXPECT_EQ(h.stats.conversions_cached, 1u);
}

TEST(Coherence, InvalidationFanOutCoalescesIntoOneMulticast) {
  Harness h(4);
  const ObjectId obj = h.add_object(32, /*home=*/0);
  for (MachineId m = 1; m <= 3; ++m)
    h.protocol->transfer(obj, m, /*exclusive=*/false);
  ASSERT_EQ(h.directory.holders(obj).size(), 4u);

  const auto baseline = h.stats;
  // Machine 1 takes the object exclusively; holders 2 and 3 must drop.
  h.protocol->transfer(obj, 1, /*exclusive=*/true);
  EXPECT_EQ(h.stats.invalidations, baseline.invalidations + 2);
  EXPECT_EQ(h.stats.invalidations_coalesced,
            baseline.invalidations_coalesced + 1);
  int multicasts = 0;
  for (const auto& c : h.transport.calls) multicasts += c.multicast ? 1 : 0;
  EXPECT_EQ(multicasts, 1);
  EXPECT_TRUE(h.directory.sole_holder(obj, 1));
}

TEST(Coherence, InvalidationFanOutUnicastsWhenCoalescingOff) {
  CoherenceConfig cfg;
  cfg.comm.coalesce_invalidations = false;
  Harness h(4, {}, cfg);
  const ObjectId obj = h.add_object(32, /*home=*/0);
  for (MachineId m = 1; m <= 3; ++m)
    h.protocol->transfer(obj, m, /*exclusive=*/false);

  const auto baseline = h.stats;
  h.protocol->transfer(obj, 1, /*exclusive=*/true);
  EXPECT_EQ(h.stats.invalidations, baseline.invalidations + 2);
  EXPECT_EQ(h.stats.invalidations_coalesced, 0u);
  for (const auto& c : h.transport.calls) EXPECT_FALSE(c.multicast);
}

TEST(Coherence, FetchBatchesPerOwnerIntoOneRoundTrip) {
  Harness h(2);
  const ObjectId a = h.add_object(64, /*home=*/1);
  const ObjectId b = h.add_object(64, /*home=*/1);

  const SimTime at = h.protocol->fetch(
      0, {{a, /*exclusive=*/true, /*blocking=*/true},
          {b, /*exclusive=*/true, /*blocking=*/true}});
  EXPECT_GT(at, 0.0);
  // One combined request + one combined reply, not two round-trips.
  EXPECT_EQ(h.stats.messages, 2u);
  EXPECT_EQ(h.stats.requests_combined, 1u);
  EXPECT_EQ(h.stats.object_moves, 2u);
  EXPECT_EQ(h.transport.calls.size(), 2u);
  EXPECT_EQ(h.directory.owner(a), 0);
  EXPECT_EQ(h.directory.owner(b), 0);
  EXPECT_EQ(h.stats.payload_bytes, 2u * 64 * sizeof(double));
}

TEST(Coherence, FetchSplitsBatchesByOwner) {
  Harness h(3);
  const ObjectId a = h.add_object(64, /*home=*/1);
  const ObjectId b = h.add_object(64, /*home=*/2);
  h.protocol->fetch(0, {{a, true, true}, {b, true, true}});
  // Two owners, one request/reply pair each (no cross-owner combining).
  EXPECT_EQ(h.stats.messages, 4u);
  EXPECT_EQ(h.stats.requests_combined, 0u);
}

TEST(Coherence, FetchWithoutCombiningIssuesPerObjectTransfers) {
  CoherenceConfig cfg;
  cfg.comm.combine_requests = false;
  Harness h(2, {}, cfg);
  const ObjectId a = h.add_object(64, /*home=*/1);
  const ObjectId b = h.add_object(64, /*home=*/1);
  h.protocol->fetch(0, {{a, true, true}, {b, true, true}});
  EXPECT_EQ(h.stats.messages, 4u);
  EXPECT_EQ(h.stats.requests_combined, 0u);
}

TEST(Coherence, TypedKeyDistinguishesOldPackingCollisions) {
  // Under the old `obj * 64 + machine` packing these two keys alias:
  // (a + 2^58) * 64 wraps modulo 2^64 back onto a * 64.
  Harness h(4);
  const ObjectId a = 7;
  const ObjectId b = a + (ObjectId{1} << 58);
  h.protocol->set_available_at(a, 3, 1.5);
  h.protocol->set_available_at(b, 3, 2.5);
  EXPECT_DOUBLE_EQ(h.protocol->available_at(a, 3), 1.5);
  EXPECT_DOUBLE_EQ(h.protocol->available_at(b, 3), 2.5);
  h.protocol->forget_machine(3);
  EXPECT_DOUBLE_EQ(h.protocol->available_at(a, 3), 0.0);
  EXPECT_DOUBLE_EQ(h.protocol->available_at(b, 3), 0.0);
}

TEST(Coherence, InFlightPayloadIsSharedByLaterReader) {
  Harness h(2);
  const ObjectId obj = h.add_object(64, /*home=*/0);
  const SimTime at = h.protocol->transfer(obj, 1, /*exclusive=*/false);
  ASSERT_GT(at, 0.0);
  // A second reader on the same machine while the payload is in flight
  // rides the existing transfer: no new messages, same arrival.
  const auto baseline = h.stats;
  const SimTime again = h.protocol->transfer(obj, 1, /*exclusive=*/false);
  EXPECT_DOUBLE_EQ(again, at);
  EXPECT_EQ(h.stats.messages, baseline.messages);
  EXPECT_EQ(h.stats.requests_combined, baseline.requests_combined + 1);
}

}  // namespace
}  // namespace jade
