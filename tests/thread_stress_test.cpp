// ThreadEngine-specific concurrency tests: the sharded buffer table, the
// determinism contract under real parallelism (results must equal the
// SerialEngine's bit-for-bit), the throttle deadlock-escape, and
// compensating-worker growth when every pool thread is blocked.
//
// The scheduling tests are built so the interesting path is *forced*, not
// raced into: the throttle test constructs a graph whose backlog cannot
// drain until the creator gives up, and the compensating test blocks the
// only pool worker on a child that no existing thread can run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/engine/buffer_table.hpp"

namespace jade {
namespace {

TEST(BufferTable, CreatePutGetRoundtrip) {
  BufferTable bt;
  std::byte* p = bt.create(7, 16);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(bt.size(7), 16u);
  EXPECT_EQ(bt.data(7), p);
  // New buffers are zero-filled.
  for (std::byte b : bt.get(7)) EXPECT_EQ(b, std::byte{0});
  std::vector<std::byte> v(16);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::byte>(i * 3 + 1);
  bt.put(7, v);
  EXPECT_EQ(bt.get(7), v);
}

TEST(BufferTable, PointersStayStableAcrossManyCreates) {
  // acquire_bytes hands out raw pointers that tasks hold with no lock; any
  // rehash/move of the backing storage would invalidate them.
  BufferTable bt;
  constexpr ObjectId kObjects = 1000;
  std::vector<std::byte*> ptrs;
  for (ObjectId id = 0; id < kObjects; ++id) ptrs.push_back(bt.create(id, 8));
  for (ObjectId id = 0; id < kObjects; ++id) {
    EXPECT_EQ(bt.data(id), ptrs[id]);
    EXPECT_EQ(bt.size(id), 8u);
  }
}

// Chains of read-write tasks interleaved with commuting accumulations: the
// per-object chains are order-determined by the serial elaboration, and the
// commute sum is order-free, so every engine and worker count must produce
// the SerialEngine's exact result.
TEST(ThreadStress, ChainsAndCommutersMatchSerialExactly) {
  constexpr int kTasks = 400;
  constexpr int kObjects = 8;
  auto run = [&](EngineKind kind, int threads) {
    RuntimeConfig cfg;
    cfg.engine = kind;
    cfg.threads = threads;
    Runtime rt(std::move(cfg));
    std::vector<SharedRef<std::uint64_t>> objs;
    for (int i = 0; i < kObjects; ++i)
      objs.push_back(rt.alloc<std::uint64_t>(1));
    auto acc = rt.alloc<std::uint64_t>(1, "acc");
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < kTasks; ++i) {
        auto o = objs[static_cast<std::size_t>(i % kObjects)];
        ctx.withonly(
            [&](AccessDecl& d) {
              d.rd_wr(o);
              d.cm(acc);
            },
            [o, acc, i](TaskContext& t) {
              auto h = t.read_write(o);
              h[0] = h[0] * 3 + static_cast<std::uint64_t>(i);
              t.commute(acc)[0] += h[0];
            });
      }
    });
    std::vector<std::uint64_t> out;
    for (auto& o : objs) out.push_back(rt.get(o)[0]);
    out.push_back(rt.get(acc)[0]);
    return out;
  };
  const auto serial = run(EngineKind::kSerial, 1);
  for (int workers : {1, 2, 8})
    EXPECT_EQ(run(EngineKind::kThread, workers), serial)
        << "workers=" << workers;
}

// Throttle give-up (the Section 3.3 deadlock escape): the root takes the
// accumulator's commute token, then creates children that all need it.  The
// first child starts and sleeps on the root's token; the rest queue behind
// the first child's write chain.  The backlog therefore CANNOT drain while
// the root sleeps in the throttle — every other thread ends up asleep with
// nothing ready, and the only legal exit is the creator giving up
// throttling and finishing its body (which releases the token).
TEST(ThreadStress, ThrottledCreatorGivesUpInsteadOfDeadlocking) {
  constexpr int kKids = 12;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 2;
  cfg.sched.throttle.enabled = true;
  cfg.sched.throttle.high_water = 4;
  cfg.sched.throttle.low_water = 2;
  Runtime rt(std::move(cfg));
  auto acc = rt.alloc<std::uint64_t>(1, "acc");
  auto w = rt.alloc<std::uint64_t>(1, "w");
  rt.run([&](TaskContext& ctx) {
    // Legal root access: no created task holds a declaration on acc yet.
    // This takes the engine-level commute token, held until the body ends.
    ctx.commute(acc)[0] = 1;
    for (int i = 0; i < kKids; ++i) {
      ctx.withonly(
          [&](AccessDecl& d) {
            d.cm(acc);
            d.rd_wr(w);
          },
          [acc, w](TaskContext& t) {
            t.commute(acc)[0] += 1;
            t.read_write(w)[0] += 1;
          });
    }
  });
  EXPECT_EQ(rt.get(acc)[0], 1u + kKids);
  EXPECT_EQ(rt.get(w)[0], static_cast<std::uint64_t>(kKids));
  EXPECT_GE(rt.stats().throttle_suspensions, 1u);
  EXPECT_GE(rt.stats().throttle_giveups, 1u);
}

// Compensating workers: with a one-worker pool, that worker's task blocks on
// a child it created — a child no existing thread can run (the root is busy
// in its own body, the worker is the blocker).  The engine must grow the
// pool by a compensating worker rather than deadlock; inlining the child on
// the blocked worker's stack is not an option the engine may take (see
// ensure_spare_worker in the engine).
TEST(ThreadStress, BlockedWorkerSpawnsCompensatingWorker) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 1;
  Runtime rt(std::move(cfg));
  auto w = rt.alloc<std::uint64_t>(1, "w");
  std::atomic<bool> done{false};
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(w); },
                 [w, &done](TaskContext& t) {
                   // Child's record enqueues ahead of ours; accessing w now
                   // must block until the child retires it.
                   t.withonly([&](AccessDecl& d) { d.rd_wr(w); },
                              [w, &done](TaskContext& c) {
                                c.read_write(w)[0] = 42;
                                done.store(true, std::memory_order_release);
                              });
                   t.read_write(w)[0] += 1;
                 });
    // Keep the root thread out of the task-stealing pool until the child
    // ran: only a compensating worker can execute it.
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  EXPECT_EQ(rt.get(w)[0], 43u);
  EXPECT_GE(rt.stats().compensating_workers, 1u);
}

}  // namespace
}  // namespace jade
