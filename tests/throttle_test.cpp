// Tests of task-creation throttling (Section 3.3, Figure 7(e)): the runtime
// suspends over-eager creators (or inlines ready tasks) without deadlock.
// Also the multi-tenant extension: per-tenant live-task quotas through the
// same gate (fair-share windows, no starvation).
#include <gtest/gtest.h>

#include "jade/core/runtime.hpp"
#include "jade/core/tenant.hpp"
#include "jade/mach/presets.hpp"
#include "jade/sched/governor.hpp"

namespace jade {
namespace {

RuntimeConfig throttled_config(EngineKind kind, std::uint64_t high,
                               std::uint64_t low, int machines = 2) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  cfg.sched.throttle.enabled = true;
  cfg.sched.throttle.high_water = high;
  cfg.sched.throttle.low_water = low;
  return cfg;
}

class ThrottleTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ThrottleTest, ResultUnchangedUnderTightThrottle) {
  Runtime rt(throttled_config(GetParam(), 4, 2));
  // Unsigned: 100 doublings wrap, which is well-defined and still
  // order-sensitive (the point of the test).
  auto v = rt.alloc<std::uint64_t>(1, "v");
  constexpr int kTasks = 100;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [v, i](TaskContext& t) {
                     auto h = t.read_write(v);
                     h[0] = h[0] * 2 + (i % 3);
                   });
    }
  });
  std::uint64_t expect = 0;
  for (int i = 0; i < kTasks; ++i) expect = expect * 2 + (i % 3);
  EXPECT_EQ(rt.get(v)[0], expect);
  // Whether the creator ever outruns the workers is timing-dependent on
  // the thread engine; only virtual time makes the suspension count
  // deterministic.
  if (GetParam() == EngineKind::kSim)
    EXPECT_GT(rt.stats().throttle_suspensions, 0u);
}

TEST_P(ThrottleTest, IndependentTasksStillAllComplete) {
  Runtime rt(throttled_config(GetParam(), 8, 4));
  constexpr int kTasks = 64;
  std::vector<SharedRef<int>> objs;
  for (int i = 0; i < kTasks; ++i) objs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i) {
      auto o = objs[i];
      ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                   [o, i](TaskContext& t) { t.write(o)[0] = i + 1; });
    }
  });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(rt.get(objs[i])[0], i + 1);
  EXPECT_EQ(rt.stats().tasks_created, static_cast<std::uint64_t>(kTasks));
}

TEST_P(ThrottleTest, NestedCreatorsThrottleWithoutDeadlock) {
  // Parents that fan out children while the throttle is engaged: the paper's
  // guarantee is that suspending creators can never deadlock because a task
  // only ever waits for earlier tasks.
  Runtime rt(throttled_config(GetParam(), 6, 3));
  auto acc = rt.alloc<std::int64_t>(1, "acc");
  constexpr int kParents = 8;
  constexpr int kKids = 8;
  rt.run([&](TaskContext& ctx) {
    for (int p = 0; p < kParents; ++p) {
      ctx.withonly([&](AccessDecl& d) { d.cm(acc); },
                   [acc](TaskContext& t) {
                     for (int k = 0; k < kKids; ++k) {
                       t.withonly([&](AccessDecl& d) { d.cm(acc); },
                                  [acc](TaskContext& c) {
                                    c.commute(acc)[0] += 1;
                                  });
                     }
                   });
    }
  });
  EXPECT_EQ(rt.get(acc)[0], kParents * kKids);
}

TEST_P(ThrottleTest, DisabledThrottleNeverSuspends) {
  RuntimeConfig cfg;
  cfg.engine = GetParam();
  cfg.threads = 2;
  if (GetParam() == EngineKind::kSim) cfg.cluster = presets::ideal(2);
  Runtime rt(cfg);
  auto v = rt.alloc<int>(1);
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                   [v](TaskContext& t) { t.commute(v)[0] += 1; });
  });
  EXPECT_EQ(rt.stats().throttle_suspensions, 0u);
  EXPECT_EQ(rt.get(v)[0], 50);
}

INSTANTIATE_TEST_SUITE_P(ParallelEngines, ThrottleTest,
                         ::testing::Values(EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           return info.param == EngineKind::kThread ? "Thread"
                                                                    : "Sim";
                         });

// --- multi-tenant fairness (per-tenant quotas through the shared gate) -----

TEST(FairShare, WindowsProportionalWithStarvationFloor) {
  const auto w = fair_share_windows(100, {3.0, 1.0, 0.0}, 2);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].first, 75u);
  EXPECT_EQ(w[1].first, 25u);
  EXPECT_EQ(w[2].first, 2u);  // zero weight still gets the floor
  for (const auto& [hi, lo] : w) {
    EXPECT_GE(lo, 1u);
    EXPECT_LE(lo, hi);
  }
  // Tiny pool, many tenants: everyone still gets the floor.
  const auto tiny = fair_share_windows(4, {1, 1, 1, 1, 1, 1, 1, 1}, 2);
  for (const auto& [hi, lo] : tiny) EXPECT_EQ(hi, 2u);
  EXPECT_TRUE(fair_share_windows(100, {}, 1).empty());
}

TEST(TenantFairness, ThreadUnequalQuotasAllTenantsProgress) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 3;
  Runtime rt(cfg);
  TenantCtl big(1), mid(2), small(3);
  big.quota_hi = 12;
  big.quota_lo = 6;
  mid.quota_hi = 4;
  mid.quota_lo = 2;
  small.quota_hi = 2;
  small.quota_lo = 1;
  constexpr int kTasks = 200;
  std::vector<SharedRef<std::uint64_t>> counters;
  for (int i = 0; i < 3; ++i)
    counters.push_back(rt.alloc<std::uint64_t>(1, "ctr"));
  TenantCtl* tenants[] = {&big, &mid, &small};
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      auto ctr = counters[static_cast<std::size_t>(i)];
      ctx.withonly_tenant(tenants[i], [](AccessDecl&) {},
                          [ctr](TaskContext& t) {
                            for (int k = 0; k < kTasks; ++k) {
                              t.withonly(
                                  [&](AccessDecl& d) { d.cm(ctr); },
                                  [ctr](TaskContext& u) {
                                    u.commute(ctr)[0] += 1;
                                  });
                            }
                          });
    }
  });
  // No starvation: every tenant ran its whole program to completion.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(rt.get(counters[static_cast<std::size_t>(i)])[0],
              static_cast<std::uint64_t>(kTasks));
  const std::uint64_t giveups = rt.stats().throttle_giveups;
  for (TenantCtl* t : tenants) {
    EXPECT_EQ(t->tasks_completed.load(), t->tasks_created.load());
    // The gate admits one creation past quota_hi per pass; only the
    // deadlock-escape give-up may exceed that.
    EXPECT_LE(t->max_live.load(), t->quota_hi.load() + 1 + giveups);
  }
  EXPECT_LT(small.max_live.load(), big.max_live.load());
}

TEST(TenantFairness, SimLargerQuotaFinishesFirst) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(4);
  Runtime rt(cfg);
  TenantCtl big(1), mid(2), small(3);
  big.quota_hi = 12;
  big.quota_lo = 6;
  mid.quota_hi = 6;
  mid.quota_lo = 3;
  small.quota_hi = 2;
  small.quota_lo = 1;
  std::vector<TenantId> finish_order;
  TenantCtl* tenants[] = {&big, &mid, &small};
  for (TenantCtl* t : tenants)
    t->on_quiesce = [&finish_order](TenantCtl& c) {
      finish_order.push_back(c.id);
    };
  rt.run([&](TaskContext& ctx) {
    for (TenantCtl* t : tenants) {
      ctx.withonly_tenant(t, [](AccessDecl&) {}, [](TaskContext& c) {
        for (int k = 0; k < 48; ++k) {
          c.withonly([](AccessDecl&) {},
                     [](TaskContext& u) { u.charge(1.0); });
        }
      });
    }
  });
  // Equal work, unequal windows: more exploitable concurrency finishes
  // sooner, and virtual time makes the order deterministic.
  ASSERT_EQ(finish_order.size(), 3u);
  EXPECT_EQ(finish_order.back(), small.id);
  for (TenantCtl* t : tenants)
    EXPECT_EQ(t->tasks_completed.load(), t->tasks_created.load());
}

}  // namespace
}  // namespace jade
