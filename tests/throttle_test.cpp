// Tests of task-creation throttling (Section 3.3, Figure 7(e)): the runtime
// suspends over-eager creators (or inlines ready tasks) without deadlock.
#include <gtest/gtest.h>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig throttled_config(EngineKind kind, std::uint64_t high,
                               std::uint64_t low, int machines = 2) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  cfg.sched.throttle.enabled = true;
  cfg.sched.throttle.high_water = high;
  cfg.sched.throttle.low_water = low;
  return cfg;
}

class ThrottleTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ThrottleTest, ResultUnchangedUnderTightThrottle) {
  Runtime rt(throttled_config(GetParam(), 4, 2));
  // Unsigned: 100 doublings wrap, which is well-defined and still
  // order-sensitive (the point of the test).
  auto v = rt.alloc<std::uint64_t>(1, "v");
  constexpr int kTasks = 100;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [v, i](TaskContext& t) {
                     auto h = t.read_write(v);
                     h[0] = h[0] * 2 + (i % 3);
                   });
    }
  });
  std::uint64_t expect = 0;
  for (int i = 0; i < kTasks; ++i) expect = expect * 2 + (i % 3);
  EXPECT_EQ(rt.get(v)[0], expect);
  // Whether the creator ever outruns the workers is timing-dependent on
  // the thread engine; only virtual time makes the suspension count
  // deterministic.
  if (GetParam() == EngineKind::kSim)
    EXPECT_GT(rt.stats().throttle_suspensions, 0u);
}

TEST_P(ThrottleTest, IndependentTasksStillAllComplete) {
  Runtime rt(throttled_config(GetParam(), 8, 4));
  constexpr int kTasks = 64;
  std::vector<SharedRef<int>> objs;
  for (int i = 0; i < kTasks; ++i) objs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i) {
      auto o = objs[i];
      ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                   [o, i](TaskContext& t) { t.write(o)[0] = i + 1; });
    }
  });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(rt.get(objs[i])[0], i + 1);
  EXPECT_EQ(rt.stats().tasks_created, static_cast<std::uint64_t>(kTasks));
}

TEST_P(ThrottleTest, NestedCreatorsThrottleWithoutDeadlock) {
  // Parents that fan out children while the throttle is engaged: the paper's
  // guarantee is that suspending creators can never deadlock because a task
  // only ever waits for earlier tasks.
  Runtime rt(throttled_config(GetParam(), 6, 3));
  auto acc = rt.alloc<std::int64_t>(1, "acc");
  constexpr int kParents = 8;
  constexpr int kKids = 8;
  rt.run([&](TaskContext& ctx) {
    for (int p = 0; p < kParents; ++p) {
      ctx.withonly([&](AccessDecl& d) { d.cm(acc); },
                   [acc](TaskContext& t) {
                     for (int k = 0; k < kKids; ++k) {
                       t.withonly([&](AccessDecl& d) { d.cm(acc); },
                                  [acc](TaskContext& c) {
                                    c.commute(acc)[0] += 1;
                                  });
                     }
                   });
    }
  });
  EXPECT_EQ(rt.get(acc)[0], kParents * kKids);
}

TEST_P(ThrottleTest, DisabledThrottleNeverSuspends) {
  RuntimeConfig cfg;
  cfg.engine = GetParam();
  cfg.threads = 2;
  if (GetParam() == EngineKind::kSim) cfg.cluster = presets::ideal(2);
  Runtime rt(cfg);
  auto v = rt.alloc<int>(1);
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                   [v](TaskContext& t) { t.commute(v)[0] += 1; });
  });
  EXPECT_EQ(rt.stats().throttle_suspensions, 0u);
  EXPECT_EQ(rt.get(v)[0], 50);
}

INSTANTIATE_TEST_SUITE_P(ParallelEngines, ThrottleTest,
                         ::testing::Values(EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           return info.param == EngineKind::kThread ? "Thread"
                                                                    : "Sim";
                         });

}  // namespace
}  // namespace jade
