// Tests of the sparse Cholesky application — the paper's worked example.
#include <gtest/gtest.h>

#include <cmath>

#include "jade/apps/backsubst.hpp"
#include "jade/apps/cholesky.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

double max_abs_diff(const SparseMatrix& a, const SparseMatrix& b) {
  double m = 0;
  for (int i = 0; i < a.n; ++i)
    for (std::size_t k = 0; k < a.cols[i].size(); ++k)
      m = std::max(m, std::abs(a.cols[i][k] - b.cols[i][k]));
  return m;
}

TEST(SpdMatrix, GeneratorIsDeterministic) {
  const auto a = make_spd(40, 0.1, 5);
  const auto b = make_spd(40, 0.1, 5);
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.cols, b.cols);
  const auto c = make_spd(40, 0.1, 6);
  EXPECT_NE(a.cols, c.cols);
}

TEST(SpdMatrix, PatternClosedUnderElimination) {
  // factor_serial asserts on fill-in; surviving it proves closure.
  auto m = make_spd(60, 0.15, 11);
  EXPECT_NO_THROW(factor_serial(m));
}

TEST(SpdMatrix, FactorizationSolvesSystems) {
  auto a = make_spd(50, 0.2, 3);
  Rng rng(17);
  std::vector<double> x_true(50);
  for (double& v : x_true) v = rng.next_double(-2, 2);
  const auto b = spd_multiply(a, x_true);

  auto l = a;
  factor_serial(l);
  const auto x = solve_factored(l, b);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(SpdMatrix, PaperExampleStructure) {
  const auto m = paper_example_matrix();
  EXPECT_EQ(m.n, 5);
  // Column 0 updates columns 3 and 4 as in Figure 4.
  std::vector<int> targets(m.row_idx.begin() + m.col_ptr[0],
                           m.row_idx.begin() + m.col_ptr[1]);
  EXPECT_EQ(targets, (std::vector<int>{3, 4}));
}

TEST(SpdMatrix, DenseCaseFactorsCorrectly) {
  auto a = make_spd(20, 1.0, 9);  // fully dense lower triangle
  auto l = a;
  factor_serial(l);
  std::vector<double> ones(20, 1.0);
  const auto b = spd_multiply(a, ones);
  const auto x = solve_factored(l, b);
  for (double v : x) EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(SpdMatrix, SeededReproducibilityAtBenchSize) {
  // The generator's symbolic fill was reworked from per-row set inserts to
  // sorted-vector merges; same seed must still yield the same matrix,
  // including at the larger sizes the benches use.
  const auto a = make_spd(150, 0.08, 0xfeedULL);
  const auto b = make_spd(150, 0.08, 0xfeedULL);
  EXPECT_EQ(a.col_ptr, b.col_ptr);
  EXPECT_EQ(a.row_idx, b.row_idx);
  EXPECT_EQ(a.cols, b.cols);
}

TEST(SpdMatrix, StructuresAreSortedUnique) {
  const auto m = make_spd(80, 0.2, 42);
  for (int i = 0; i < m.n; ++i) {
    for (int k = m.col_ptr[i]; k < m.col_ptr[i + 1]; ++k) {
      EXPECT_GT(m.row_idx[k], i);  // strictly below the diagonal
      if (k > m.col_ptr[i]) EXPECT_LT(m.row_idx[k - 1], m.row_idx[k]);
    }
  }
}

TEST(Backsubst, MultiRhsSerialMatchesPerRhsSolves) {
  auto l = make_spd(36, 0.2, 91);
  factor_serial(l);
  constexpr int kRhs = 5;
  Rng rng(23);
  // RHS-major block and the equivalent per-RHS vectors.
  std::vector<double> block(36 * kRhs);
  std::vector<std::vector<double>> singles(kRhs, std::vector<double>(36));
  for (int row = 0; row < 36; ++row)
    for (int v = 0; v < kRhs; ++v) {
      const double val = rng.next_double(-3, 3);
      block[static_cast<std::size_t>(row) * kRhs + v] = val;
      singles[v][row] = val;
    }
  forward_solve_multi_serial(l, kRhs, block);
  for (int v = 0; v < kRhs; ++v) {
    const auto x = forward_solve(l, singles[v]);
    for (int row = 0; row < 36; ++row)
      EXPECT_EQ(block[static_cast<std::size_t>(row) * kRhs + v], x[row])
          << "rhs=" << v << " row=" << row;
  }
}

class JadeCholeskyTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(JadeCholeskyTest, MatchesSerialFactorBitExactly) {
  const auto a = make_spd(48, 0.15, 21);
  auto expect = a;
  factor_serial(expect);

  Runtime rt(config_for(GetParam()));
  auto jm = upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { factor_jade(ctx, jm); });
  const auto got = download_matrix(rt, jm);
  EXPECT_EQ(got.cols, expect.cols);  // bit-identical serial semantics
}

TEST_P(JadeCholeskyTest, PaperExampleTaskCounts) {
  const auto a = paper_example_matrix();
  Runtime rt(config_for(GetParam()));
  auto jm = upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { factor_jade(ctx, jm); });
  // 5 InternalUpdates + one ExternalUpdate per subdiagonal nonzero.
  EXPECT_EQ(rt.stats().tasks_created,
            5u + static_cast<std::uint64_t>(a.row_idx.size()));
}

TEST_P(JadeCholeskyTest, BlockedFactorMatchesUnblocked) {
  const auto a = make_spd(40, 0.2, 33);
  auto expect = a;
  factor_serial(expect);
  for (int block : {1, 3, 8, 40}) {
    Runtime rt(config_for(GetParam()));
    auto jm = upload_blocked(rt, a, block);
    rt.run([&](TaskContext& ctx) { factor_jade_blocked(ctx, jm); });
    const auto got = download_blocked(rt, jm);
    EXPECT_EQ(got.cols, expect.cols) << "block=" << block;
  }
}

TEST_P(JadeCholeskyTest, BlockingReducesTaskCount) {
  const auto a = make_spd(40, 0.2, 33);
  auto count_tasks = [&](int block) {
    Runtime rt(config_for(GetParam()));
    auto jm = upload_blocked(rt, a, block);
    rt.run([&](TaskContext& ctx) { factor_jade_blocked(ctx, jm); });
    return rt.stats().tasks_created;
  };
  EXPECT_GT(count_tasks(1), count_tasks(8));
  EXPECT_GT(count_tasks(8), count_tasks(40));
}

TEST_P(JadeCholeskyTest, FactorThenPipelinedSolve) {
  const auto a = make_spd(32, 0.25, 55);
  Rng rng(5);
  std::vector<double> x_true(32);
  for (double& v : x_true) v = rng.next_double(-1, 1);
  const auto b = spd_multiply(a, x_true);

  Runtime rt(config_for(GetParam()));
  auto jm = upload_matrix(rt, a);
  auto x = rt.alloc_init<double>(b, "x");
  rt.run([&](TaskContext& ctx) {
    factor_jade(ctx, jm);
    // Created before the factorization finishes; overlaps via df_rd.
    forward_solve_jade(ctx, jm, x, /*pipelined=*/true);
    backward_solve_jade(ctx, jm, x);
  });
  const auto got = rt.get(x);
  for (int i = 0; i < 32; ++i) EXPECT_NEAR(got[i], x_true[i], 1e-8);
}

TEST_P(JadeCholeskyTest, PipelinedAndUnpipelinedSolvesAgree) {
  const auto a = make_spd(24, 0.3, 77);
  const std::vector<double> b(24, 1.0);
  auto run_variant = [&](bool pipelined) {
    Runtime rt(config_for(GetParam()));
    auto jm = upload_matrix(rt, a);
    auto x = rt.alloc_init<double>(std::span<const double>(b), "x");
    rt.run([&](TaskContext& ctx) {
      factor_jade(ctx, jm);
      forward_solve_jade(ctx, jm, x, pipelined);
    });
    return rt.get(x);
  };
  EXPECT_EQ(run_variant(true), run_variant(false));
}

TEST_P(JadeCholeskyTest, MultiRhsSolveMatchesSerial) {
  const auto a = make_spd(28, 0.25, 19);
  constexpr int kRhs = 4;
  std::vector<double> b(28 * kRhs);
  Rng rng(3);
  for (double& v : b) v = rng.next_double(-1, 1);

  auto l = a;
  factor_serial(l);
  auto expect = b;
  forward_solve_multi_serial(l, kRhs, expect);

  for (const bool pipelined : {true, false}) {
    Runtime rt(config_for(GetParam()));
    auto jm = upload_matrix(rt, a);
    auto x = rt.alloc_init<double>(b, "x");
    rt.run([&](TaskContext& ctx) {
      factor_jade(ctx, jm);
      forward_solve_multi_jade(ctx, jm, x, kRhs, pipelined);
    });
    EXPECT_EQ(rt.get(x), expect) << "pipelined=" << pipelined;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, JadeCholeskyTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

TEST(JadeCholeskySim, PipeliningShortensVirtualTime) {
  const auto a = make_spd(96, 0.1, 13);
  auto duration = [&](bool pipelined) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ipsc860(8);
    Runtime rt(std::move(cfg));
    auto jm = upload_matrix(rt, a);
    auto x = rt.alloc<double>(static_cast<std::size_t>(a.n), "x");
    rt.run([&](TaskContext& ctx) {
      factor_jade(ctx, jm);
      forward_solve_jade(ctx, jm, x, pipelined);
    });
    return rt.sim_duration();
  };
  EXPECT_LT(duration(true), duration(false));
}

}  // namespace
}  // namespace jade::apps
