// Tests for the distributed object store: directory state transitions
// (move/copy/invalidate), local-store accounting, locality queries.
#include <gtest/gtest.h>

#include "jade/store/directory.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

ObjectInfo make_info(ObjectId id, std::size_t doubles) {
  return ObjectInfo{id, TypeDescriptor::array_of<double>(doubles),
                    "o" + std::to_string(id)};
}

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : dir(4) {
    dir.add_object(make_info(1, 10), /*home=*/0);  // 80 bytes
    dir.add_object(make_info(2, 5), /*home=*/1);   // 40 bytes
  }
  ObjectDirectory dir;
};

TEST_F(DirectoryTest, InitialPlacement) {
  EXPECT_EQ(dir.owner(1), 0);
  EXPECT_TRUE(dir.present(1, 0));
  EXPECT_FALSE(dir.present(1, 1));
  EXPECT_EQ(dir.object_bytes(1), 80u);
  EXPECT_EQ(dir.store(0).resident_bytes(), 80u);
  EXPECT_EQ(dir.store(1).resident_bytes(), 40u);
  EXPECT_EQ(dir.version(1), 0u);
}

TEST_F(DirectoryTest, ReplicationKeepsOwner) {
  dir.replicate_to(1, 2);
  dir.replicate_to(1, 3);
  EXPECT_EQ(dir.owner(1), 0);
  EXPECT_TRUE(dir.present(1, 2));
  EXPECT_TRUE(dir.present(1, 3));
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{0, 2, 3}));
  EXPECT_EQ(dir.store(2).resident_bytes(), 80u);
  EXPECT_EQ(dir.version(1), 0u);  // copies don't bump the version
}

TEST_F(DirectoryTest, MoveInvalidatesReplicas) {
  dir.replicate_to(1, 1);
  dir.replicate_to(1, 2);
  const int invalidated = dir.move_to(1, 3);
  EXPECT_EQ(invalidated, 2);  // replicas at 1 and 2; owner's copy travelled
  EXPECT_EQ(dir.owner(1), 3);
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{3}));
  EXPECT_FALSE(dir.present(1, 0));
  EXPECT_EQ(dir.store(0).resident_bytes(), 0u);
  EXPECT_EQ(dir.version(1), 1u);
}

TEST_F(DirectoryTest, MoveToSelfWithReplicas) {
  dir.replicate_to(1, 1);
  const int invalidated = dir.move_to(1, 0);
  EXPECT_EQ(invalidated, 1);
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{0}));
  EXPECT_EQ(dir.version(1), 1u);
}

TEST_F(DirectoryTest, MoveToReplicaHolder) {
  dir.replicate_to(1, 2);
  dir.move_to(1, 2);
  EXPECT_EQ(dir.owner(1), 2);
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{2}));
  EXPECT_EQ(dir.store(2).resident_bytes(), 80u);
}

TEST_F(DirectoryTest, DataBufferPersistsAcrossMoves) {
  auto* d = reinterpret_cast<double*>(dir.data(1));
  d[0] = 42.5;
  dir.move_to(1, 3);
  EXPECT_DOUBLE_EQ(reinterpret_cast<double*>(dir.data(1))[0], 42.5);
}

TEST_F(DirectoryTest, BytesPresentScoresLocality) {
  const ObjectId objs[] = {1, 2};
  EXPECT_EQ(dir.bytes_present(objs, 0), 80u);
  EXPECT_EQ(dir.bytes_present(objs, 1), 40u);
  EXPECT_EQ(dir.bytes_present(objs, 2), 0u);
  dir.replicate_to(2, 0);
  EXPECT_EQ(dir.bytes_present(objs, 0), 120u);
}

TEST_F(DirectoryTest, DoubleReplicationIsInternalError) {
  dir.replicate_to(1, 2);
  EXPECT_THROW(dir.replicate_to(1, 2), InternalError);
}

TEST_F(DirectoryTest, UnknownObjectIsError) {
  EXPECT_THROW(dir.owner(99), InternalError);
  EXPECT_FALSE(dir.known(99));
  EXPECT_TRUE(dir.known(1));
}

TEST(LocalStore, InsertEvictAccounting) {
  LocalStore s(2);
  s.insert(1, 100);
  s.insert(2, 50);
  EXPECT_TRUE(s.resident(1));
  EXPECT_EQ(s.resident_bytes(), 150u);
  EXPECT_EQ(s.resident_count(), 2u);
  s.evict(1, 100);
  EXPECT_FALSE(s.resident(1));
  EXPECT_EQ(s.resident_bytes(), 50u);
  EXPECT_EQ(s.inserts(), 2u);
  EXPECT_EQ(s.evictions(), 1u);
}

TEST(LocalStore, EvictingAbsentObjectIsError) {
  LocalStore s(0);
  EXPECT_THROW(s.evict(7, 10), InternalError);
}

TEST(Directory, MachineCountLimits) {
  // An out-of-range cluster size is a configuration problem, not a runtime
  // invariant violation.  Since the ReplicaSet rework the ceiling is a
  // sanity bound (kMaxMachines), not the old 64-bit-mask width; 65+ machines
  // are legal (tests/directory_scale_test.cpp exercises 1024+).
  EXPECT_THROW(ObjectDirectory(0), ConfigError);
  EXPECT_THROW(ObjectDirectory(kMaxMachines + 1), ConfigError);
  EXPECT_THROW(ObjectDirectory(-1), ConfigError);
  ObjectDirectory ok65(65);
  EXPECT_EQ(ok65.machine_count(), 65);
  ObjectDirectory ok(kMaxMachines);
  EXPECT_EQ(ok.machine_count(), kMaxMachines);
}

// --- replica reuse / data-version bookkeeping -------------------------------

TEST_F(DirectoryTest, DropRecordsVersionForReuse) {
  dir.replicate_to(1, 2);
  EXPECT_FALSE(dir.reusable(1, 2));  // present, nothing to revalidate
  dir.drop_copy(1, 2);
  EXPECT_FALSE(dir.present(1, 2));
  EXPECT_TRUE(dir.reusable(1, 2));  // dropped at the current data version
  EXPECT_FALSE(dir.reusable(1, 3));  // machine 3 never held a copy
}

TEST_F(DirectoryTest, DirtyingKillsReuse) {
  dir.replicate_to(1, 2);
  dir.drop_copy(1, 2);
  ASSERT_TRUE(dir.reusable(1, 2));
  dir.mark_dirty(1);
  EXPECT_FALSE(dir.reusable(1, 2));  // content moved on; replica is stale
  EXPECT_EQ(dir.data_version(1), 1u);
}

TEST_F(DirectoryTest, MoveRecordsEvictedHoldersForReuse) {
  dir.replicate_to(1, 1);
  dir.replicate_to(1, 2);
  dir.move_to(1, 3);  // evicts 0, 1, 2
  EXPECT_TRUE(dir.reusable(1, 0));
  EXPECT_TRUE(dir.reusable(1, 1));
  EXPECT_TRUE(dir.reusable(1, 2));
  EXPECT_FALSE(dir.reusable(1, 3));  // present: nothing to revalidate
}

TEST_F(DirectoryTest, RevalidateRestoresReplica) {
  dir.replicate_to(1, 2);
  dir.drop_copy(1, 2);
  dir.revalidate_to(1, 2);
  EXPECT_TRUE(dir.present(1, 2));
  EXPECT_FALSE(dir.reusable(1, 2));  // present again
  EXPECT_EQ(dir.store(2).resident_bytes(), 80u);
  EXPECT_EQ(dir.owner(1), 0);  // revalidation never moves ownership
}

TEST_F(DirectoryTest, InvalidateReplicasDropsNonOwners) {
  dir.replicate_to(1, 1);
  dir.replicate_to(1, 3);
  const std::vector<MachineId> dropped = dir.invalidate_replicas(1);
  EXPECT_EQ(dropped, (std::vector<MachineId>{1, 3}));
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{0}));
  EXPECT_TRUE(dir.sole_holder(1, 0));
  // The dropped replicas match the pre-invalidation version...
  EXPECT_TRUE(dir.reusable(1, 1));
  // ...until the writer that triggered the invalidation dirties the object.
  dir.mark_dirty(1);
  EXPECT_FALSE(dir.reusable(1, 1));
}

TEST_F(DirectoryTest, SetDataVersionRestoresReuseDecisions) {
  // A killed task attempt rolls the data version back; replicas dropped at
  // the earlier version become reusable again.
  dir.replicate_to(1, 2);
  dir.drop_copy(1, 2);
  dir.mark_dirty(1);
  ASSERT_FALSE(dir.reusable(1, 2));
  dir.set_data_version(1, 0);
  EXPECT_TRUE(dir.reusable(1, 2));
}

TEST_F(DirectoryTest, BytesScoreableCountsReusableReplicas) {
  const ObjectId objs[] = {1, 2};
  dir.replicate_to(1, 2);
  dir.drop_copy(1, 2);
  // Scoring off (default): identical to bytes_present.
  EXPECT_EQ(dir.bytes_scoreable(objs, 2), dir.bytes_present(objs, 2));
  EXPECT_EQ(dir.bytes_scoreable(objs, 2), 0u);
  dir.set_reuse_scoring(true);
  EXPECT_EQ(dir.bytes_scoreable(objs, 2), 80u);  // the reusable replica
  EXPECT_EQ(dir.bytes_present(objs, 2), 0u);     // still not resident
  dir.mark_dirty(1);
  EXPECT_EQ(dir.bytes_scoreable(objs, 2), 0u);  // stale: no longer scores
}

TEST_F(DirectoryTest, ReuseSurvivesOwnershipSurgery) {
  // ft recovery re-homes ownership without touching other machines' reuse
  // records: a replica dropped before the crash still revalidates.
  dir.replicate_to(1, 2);
  dir.replicate_to(1, 3);
  dir.drop_copy(1, 3);
  ASSERT_TRUE(dir.reusable(1, 3));
  dir.set_owner(1, 2);   // machine 0 died; the replica at 2 takes over
  dir.drop_copy(1, 0);
  EXPECT_EQ(dir.owner(1), 2);
  EXPECT_TRUE(dir.reusable(1, 3));
  EXPECT_TRUE(dir.reusable(1, 0));  // the dead home's copy was also current
}

}  // namespace
}  // namespace jade
