// Stress and property tests for the discrete-event kernel: heavy process
// churn (thread reaping), randomized timer programs checked against a
// host-side model, and producer/consumer chains through park/resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "jade/sim/simulation.hpp"
#include "jade/support/rng.hpp"

namespace jade {
namespace {

TEST(SimStress, ThousandsOfShortLivedProcesses) {
  // One process per "task", like SimEngine under a large program; finished
  // threads must be reaped, not accumulated.
  Simulation sim;
  int completed = 0;
  for (int i = 0; i < 5000; ++i) {
    sim.spawn_at(i * 1e-6, "p" + std::to_string(i), [&sim, &completed] {
      sim.advance(5e-6);
      ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, 5000);
  EXPECT_NEAR(sim.now(), 5000 * 1e-6 + 4e-6, 1e-9);
}

TEST(SimStress, RandomTimerProgramMatchesModel) {
  // Processes advance by random delays; the wake sequence must equal the
  // host-computed sorted (time, spawn-order) sequence.
  for (std::uint64_t seed : {1ull, 9ull, 77ull}) {
    Rng rng(seed);
    const int procs = 40;
    const int hops = 8;
    // Model: absolute wake times per process.
    std::vector<std::vector<double>> wakes(procs);
    for (int p = 0; p < procs; ++p) {
      double t = 0;
      for (int h = 0; h < hops; ++h) {
        t += 1e-3 * static_cast<double>(1 + rng.next_below(1000));
        wakes[p].push_back(t);
      }
    }
    std::vector<std::pair<double, int>> expected;
    for (int p = 0; p < procs; ++p)
      for (double t : wakes[p]) expected.push_back({t, p});
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });

    Simulation sim;
    std::vector<std::pair<double, int>> observed;
    for (int p = 0; p < procs; ++p) {
      sim.spawn("p" + std::to_string(p), [&sim, &observed, &wakes, p] {
        double prev = 0;
        for (double t : wakes[p]) {
          sim.advance(t - prev);
          prev = t;
          observed.push_back({sim.now(), p});
        }
      });
    }
    sim.run();
    ASSERT_EQ(observed.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(observed[i].first, expected[i].first) << i;
      // Ties: identical wake times fire in schedule order, which for equal
      // times equals spawn order here.
      if (observed[i].first != expected[i].first) break;
    }
  }
}

TEST(SimStress, PingPongParkResumeChain) {
  // Two processes hand control back and forth 500 times through the
  // park/resume protocol (the same mechanism SimEngine tasks block with).
  Simulation sim;
  int pongs = 0;
  const int rounds = 500;
  Process* ping = nullptr;
  Process* pong = nullptr;
  pong = sim.spawn("pong", [&] {
    for (int r = 0; r < rounds; ++r) {
      sim.park();  // wait for ping
      ++pongs;
      sim.resume(ping);
    }
  });
  ping = sim.spawn("ping", [&] {
    for (int r = 0; r < rounds; ++r) {
      sim.resume(pong);  // pong spawned first and is parked
      sim.park();        // wait for the reply
    }
  });
  sim.run();
  EXPECT_EQ(pongs, rounds);
}

TEST(SimStress, InterleavedEventsAndProcesses) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(0.5, [&] { order.push_back(-1); });
  sim.schedule(1.5, [&] { order.push_back(-2); });
  sim.spawn("p", [&] {
    order.push_back(1);
    sim.advance(1.0);
    order.push_back(2);
    sim.advance(1.0);
    order.push_back(3);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, -1, 2, -2, 3}));
}

TEST(SimStress, DeterministicAcrossRepetitions) {
  auto run_once = [] {
    Simulation sim;
    Rng rng(404);
    std::vector<int> order;
    for (int i = 0; i < 100; ++i) {
      const double delay = 1e-4 * static_cast<double>(rng.next_below(50));
      sim.spawn("p" + std::to_string(i), [&sim, &order, delay, i] {
        sim.advance(delay);
        order.push_back(i);
        sim.advance(delay);
        order.push_back(100 + i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace jade
