// JadeServer: session lifecycle, tenant isolation, admission control,
// forced teardown, failure containment, and batch-mode determinism —
// thousands of independent Jade programs multiplexed onto one engine.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "jade/mach/presets.hpp"
#include "jade/server/server.hpp"

namespace jade {
namespace {

using server::Admission;
using server::AdmissionConfig;
using server::AdmissionController;
using server::JadeServer;
using server::ServerConfig;
using server::Session;
using server::SessionOptions;
using server::SessionState;

ServerConfig thread_config(int threads = 3) {
  ServerConfig cfg;
  cfg.runtime.engine = EngineKind::kThread;
  cfg.runtime.threads = threads;
  return cfg;
}

ServerConfig batch_config(EngineKind kind) {
  ServerConfig cfg;
  cfg.runtime.engine = kind;
  if (kind == EngineKind::kSim) cfg.runtime.cluster = presets::ideal(3);
  return cfg;
}

/// A tenant program: `tasks` children each add their index into a
/// per-session accumulator; result is the triangular sum.
void submit_sum(const std::shared_ptr<Session>& s,
                const SharedRef<std::uint64_t>& acc, int tasks) {
  s->submit([acc, tasks](TaskContext& ctx) {
    for (int i = 0; i < tasks; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(acc); },
                   [acc, i](TaskContext& t) {
                     t.read_write(acc)[0] += static_cast<std::uint64_t>(i);
                   });
    }
  });
}

std::uint64_t triangle(int n) {
  return static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
}

TEST(ServerLifecycle, SessionsRunConcurrentlyAndIndependently) {
  JadeServer server(thread_config());
  constexpr int kSessions = 16;
  std::vector<std::shared_ptr<Session>> sessions;
  std::vector<SharedRef<std::uint64_t>> accs;
  for (int i = 0; i < kSessions; ++i) {
    auto s = server.open_session("t" + std::to_string(i));
    ASSERT_NE(s, nullptr);
    accs.push_back(s->alloc<std::uint64_t>(1, "acc"));
    sessions.push_back(std::move(s));
  }
  for (int i = 0; i < kSessions; ++i)
    submit_sum(sessions[static_cast<std::size_t>(i)],
               accs[static_cast<std::size_t>(i)], 10 + i);
  for (int i = 0; i < kSessions; ++i) {
    auto& s = sessions[static_cast<std::size_t>(i)];
    EXPECT_EQ(s->wait(), SessionState::kCompleted);
    EXPECT_EQ(s->get(accs[static_cast<std::size_t>(i)])[0], triangle(10 + i));
    const auto stats = s->stats();
    EXPECT_EQ(stats.tasks_created, static_cast<std::uint64_t>(10 + i) + 1);
    EXPECT_EQ(stats.tasks_completed, stats.tasks_created);
    EXPECT_GE(stats.latency_seconds, 0.0);
    s->close();
  }
  EXPECT_EQ(server.active_sessions(), 0u);
}

TEST(ServerIsolation, CrossTenantDeclarationFailsOnlyThatSession) {
  JadeServer server(thread_config());
  auto a = server.open_session("a");
  auto b = server.open_session("b");
  auto c = server.open_session("c");
  auto acc_a = a->alloc<std::uint64_t>(1, "acc");
  auto acc_c = c->alloc<std::uint64_t>(1, "acc");
  submit_sum(a, acc_a, 8);
  // b declares a's object: the serializer rejects it at task creation,
  // which fails b's root body — and nothing else.
  b->submit([acc_a](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(acc_a); },
                 [acc_a](TaskContext& t) { t.read_write(acc_a)[0] = 999; });
  });
  submit_sum(c, acc_c, 8);
  EXPECT_EQ(b->wait(), SessionState::kFailed);
  EXPECT_THROW(b->rethrow_failure(), TenantIsolationError);
  EXPECT_EQ(a->wait(), SessionState::kCompleted);
  EXPECT_EQ(c->wait(), SessionState::kCompleted);
  EXPECT_EQ(a->get(acc_a)[0], triangle(8));
  EXPECT_EQ(c->get(acc_c)[0], triangle(8));
  a->close();
  b->close();
  c->close();
}

TEST(ServerIsolation, HostSideAccessToForeignObjectRejected) {
  JadeServer server(thread_config());
  auto a = server.open_session("a");
  auto b = server.open_session("b");
  auto obj = a->alloc<std::uint64_t>(4, "data");
  EXPECT_THROW(b->get(obj), TenantIsolationError);
  const std::vector<std::uint64_t> data(4, 7);
  EXPECT_THROW(b->put(obj, std::span<const std::uint64_t>(data)),
               TenantIsolationError);
  EXPECT_NO_THROW(a->put(obj, std::span<const std::uint64_t>(data)));
  EXPECT_EQ(a->get(obj)[0], 7u);
}

TEST(ServerAdmission, QueuesPromotesAndRejects) {
  ServerConfig cfg = thread_config(2);
  cfg.admission.max_active_sessions = 2;
  cfg.admission.max_queued_sessions = 2;
  JadeServer server(cfg);
  auto s1 = server.open_session("s1");
  auto s2 = server.open_session("s2");
  auto s3 = server.open_session("s3");
  auto s4 = server.open_session("s4");
  ASSERT_NE(s3, nullptr);
  ASSERT_NE(s4, nullptr);
  EXPECT_EQ(s3->state(), SessionState::kQueued);
  EXPECT_EQ(s4->state(), SessionState::kQueued);
  // Queue full: the fifth arrival is rejected, not parked.
  EXPECT_EQ(server.open_session("s5"), nullptr);
  EXPECT_EQ(server.active_sessions(), 2u);
  EXPECT_EQ(server.queued_sessions(), 2u);

  // A queued session can submit; the body launches on promotion.
  auto acc3 = s3->alloc<std::uint64_t>(1, "acc");
  submit_sum(s3, acc3, 6);
  auto acc1 = s1->alloc<std::uint64_t>(1, "acc");
  submit_sum(s1, acc1, 6);
  EXPECT_EQ(s1->wait(), SessionState::kCompleted);
  s1->close();  // frees a slot: s3 promotes and runs
  EXPECT_EQ(s3->wait(), SessionState::kCompleted);
  EXPECT_EQ(s3->get(acc3)[0], triangle(6));
  s2->cancel();
  s3->close();
  s4->cancel();
  EXPECT_EQ(s4->wait(), SessionState::kCancelled);
}

TEST(ServerAdmission, ByteBudgetGatesAdmission) {
  AdmissionController ctl(AdmissionConfig{4, 4, 1000});
  EXPECT_EQ(ctl.decide(600), Admission::kAdmit);
  ctl.admit(600);
  EXPECT_EQ(ctl.decide(600), Admission::kQueue);  // 1200 > 1000
  EXPECT_EQ(ctl.decide(300), Admission::kAdmit);
  EXPECT_EQ(ctl.decide(2000), Admission::kReject);  // can never fit
  ctl.release(600);
  EXPECT_EQ(ctl.decide(600), Admission::kAdmit);
}

TEST(ServerTeardown, ForcedTeardownMidRunLeavesEngineServing) {
  ServerConfig cfg = thread_config(3);
  cfg.quota_pool = 32;  // backpressure so the victim cannot flood the engine
  JadeServer server(cfg);
  auto victim = server.open_session("victim");
  auto bystander = server.open_session("bystander");
  auto acc_b = bystander->alloc<std::uint64_t>(1, "acc");
  std::atomic<bool> started{false};
  TenantCtl* ctl = &victim->ctl();
  victim->submit([&started, ctl](TaskContext& ctx) {
    for (int i = 0;
         i < 50'000'000 && !ctl->cancelled.load(std::memory_order_relaxed);
         ++i) {
      ctx.withonly([](AccessDecl&) {},
                   [&started](TaskContext&) {
                     started.store(true, std::memory_order_release);
                   });
    }
  });
  submit_sum(bystander, acc_b, 32);
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  victim->cancel();
  EXPECT_EQ(victim->wait(), SessionState::kCancelled);
  EXPECT_EQ(bystander->wait(), SessionState::kCompleted);
  EXPECT_EQ(bystander->get(acc_b)[0], triangle(32));
  const auto vstats = victim->stats();
  EXPECT_EQ(vstats.tasks_completed, vstats.tasks_created);
  victim->close();
  bystander->close();
  // The engine keeps serving follow-up tenants after the teardown.
  auto after = server.open_session("after");
  auto acc = after->alloc<std::uint64_t>(1, "acc");
  submit_sum(after, acc, 12);
  EXPECT_EQ(after->wait(), SessionState::kCompleted);
  EXPECT_EQ(after->get(acc)[0], triangle(12));
  after->close();
}

TEST(ServerFailure, BodyExceptionContainedToItsSession) {
  JadeServer server(thread_config());
  auto bad = server.open_session("bad");
  auto good = server.open_session("good");
  auto acc = good->alloc<std::uint64_t>(1, "acc");
  bad->submit([](TaskContext& ctx) {
    ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {
      throw std::runtime_error("tenant bug");
    });
  });
  submit_sum(good, acc, 20);
  EXPECT_EQ(bad->wait(), SessionState::kFailed);
  EXPECT_THROW(bad->rethrow_failure(), std::runtime_error);
  EXPECT_EQ(good->wait(), SessionState::kCompleted);
  EXPECT_EQ(good->get(acc)[0], triangle(20));
  bad->close();
  good->close();
}

TEST(ServerMetrics, TenantNamespacedCountersPublished) {
  JadeServer server(thread_config());
  auto s = server.open_session("metered");
  auto acc = s->alloc<std::uint64_t>(1, "acc");
  submit_sum(s, acc, 5);
  EXPECT_EQ(s->wait(), SessionState::kCompleted);
  const std::string prefix = "tenant." + std::to_string(s->id()) + ".";
  obs::MetricsRegistry& reg = server.metrics();
  ASSERT_TRUE(reg.has(prefix + "tasks_created"));
  EXPECT_EQ(reg.counter(prefix + "tasks_created").value(), 6u);
  EXPECT_EQ(reg.counter(prefix + "tasks_completed").value(), 6u);
  EXPECT_EQ(reg.counter(prefix + "tasks_cancelled").value(), 0u);
  EXPECT_EQ(reg.counter("server.sessions_completed").value(), 1u);
  EXPECT_EQ(reg.histogram("server.session_latency").count(), 1u);
  s->close();
}

class BatchServerTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(BatchServerTest, DrainRunsPendingGraphsToQuiescence) {
  JadeServer server(batch_config(GetParam()));
  auto a = server.open_session("a");
  auto b = server.open_session("b");
  auto acc_a = a->alloc<std::uint64_t>(1, "acc");
  auto acc_b = b->alloc<std::uint64_t>(1, "acc");
  submit_sum(a, acc_a, 10);
  submit_sum(b, acc_b, 20);
  EXPECT_EQ(a->state(), SessionState::kRunning);
  server.drain();
  EXPECT_EQ(a->wait(), SessionState::kCompleted);
  EXPECT_EQ(b->wait(), SessionState::kCompleted);
  EXPECT_EQ(a->get(acc_a)[0], triangle(10));
  EXPECT_EQ(b->get(acc_b)[0], triangle(20));
  a->close();
  b->close();
  // A second wave reuses the engine.
  auto c = server.open_session("c");
  auto acc_c = c->alloc<std::uint64_t>(1, "acc");
  submit_sum(c, acc_c, 30);
  server.drain();
  EXPECT_EQ(c->wait(), SessionState::kCompleted);
  EXPECT_EQ(c->get(acc_c)[0], triangle(30));
  c->close();
}

INSTANTIATE_TEST_SUITE_P(BatchEngines, BatchServerTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           return info.param == EngineKind::kSerial ? "Serial"
                                                                    : "Sim";
                         });

TEST(BatchServer, SimDrainDeterministic) {
  auto run_once = [] {
    JadeServer server(batch_config(EngineKind::kSim));
    std::vector<std::uint64_t> out;
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<SharedRef<std::uint64_t>> accs;
    for (int i = 0; i < 6; ++i) {
      auto s = server.open_session("t" + std::to_string(i));
      accs.push_back(s->alloc<std::uint64_t>(1, "acc"));
      sessions.push_back(std::move(s));
    }
    for (int i = 0; i < 6; ++i)
      submit_sum(sessions[static_cast<std::size_t>(i)],
                 accs[static_cast<std::size_t>(i)], 4 + i);
    server.drain();
    for (int i = 0; i < 6; ++i) {
      out.push_back(sessions[static_cast<std::size_t>(i)]
                        ->get(accs[static_cast<std::size_t>(i)])[0]);
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ServerStop, QueuedAndUnlaunchedSessionsCancelled) {
  ServerConfig cfg = thread_config(2);
  cfg.admission.max_active_sessions = 1;
  JadeServer server(cfg);
  auto active = server.open_session("active");
  auto queued = server.open_session("queued");
  EXPECT_EQ(queued->state(), SessionState::kQueued);
  server.stop();
  EXPECT_EQ(queued->wait(), SessionState::kCancelled);
  EXPECT_EQ(server.open_session("late"), nullptr);
  active->cancel();
  EXPECT_EQ(active->wait(), SessionState::kCancelled);
}

}  // namespace
}  // namespace jade
