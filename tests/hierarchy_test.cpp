// Tests of hierarchical concurrency (Section 4.4): nested withonly-do,
// coverage enforcement, and parent/child interleaving rules.
#include <gtest/gtest.h>

#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

class HierarchyTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(HierarchyTest, RecursiveTreeSum) {
  // Recursive pairwise accumulation: each level splits its leaf range and
  // delegates to children, the "fully recursive manner" of Section 4.4.
  // Every level accumulates into the same output via commuting updates,
  // covered down the chain by each parent's cm declaration.
  Runtime rt(config_for(GetParam()));
  constexpr int kLeaves = 8;
  std::vector<SharedRef<double>> leaves;
  for (int i = 0; i < kLeaves; ++i)
    leaves.push_back(rt.alloc<double>(1, "leaf" + std::to_string(i)));
  auto out = rt.alloc<double>(1, "out");

  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kLeaves; ++i) {
      auto leaf = leaves[i];
      ctx.withonly([&](AccessDecl& d) { d.wr(leaf); },
                   [leaf, i](TaskContext& t) { t.write(leaf)[0] = i + 1; });
    }
    // Recursive splitter: declares rd on its leaf range and cm on out; at
    // size 1 it adds its leaf, otherwise it creates two covered children.
    struct Splitter {
      const std::vector<SharedRef<double>>* leaves;
      SharedRef<double> out;
      void operator()(TaskContext& t, int lo, int hi) const {
        if (hi - lo == 1) {
          t.commute(out)[0] += t.read((*leaves)[lo])[0];
          return;
        }
        const int mid = (lo + hi) / 2;
        for (auto [a, b] : {std::pair{lo, mid}, std::pair{mid, hi}}) {
          auto self = *this;
          t.withonly(
              [&](AccessDecl& d) {
                for (int i = a; i < b; ++i) d.rd((*leaves)[i]);
                d.cm(out);
              },
              [self, a, b](TaskContext& c) { self(c, a, b); });
        }
      }
    };
    Splitter splitter{&leaves, out};
    ctx.withonly(
        [&](AccessDecl& d) {
          for (auto& leaf : leaves) d.rd(leaf);
          d.cm(out);
        },
        [splitter](TaskContext& t) { splitter(t, 0, 8); });
  });
  EXPECT_DOUBLE_EQ(rt.get(out)[0], kLeaves * (kLeaves + 1) / 2.0);
}

TEST_P(HierarchyTest, ChildrenExecuteBeforeParentContinuation) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<std::int64_t>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   for (int i = 0; i < 3; ++i) {
                     t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                                [v, i](TaskContext& c) {
                                  auto h = c.read_write(v);
                                  h[0] = h[0] * 10 + (i + 1);
                                });
                   }
                   // Parent's later access observes all three children in
                   // creation order: 0 -> 1 -> 12 -> 123.
                   auto h = t.read_write(v);
                   h[0] = h[0] * 10 + 9;
                 });
  });
  EXPECT_EQ(rt.get(v)[0], 1239);
}

TEST_P(HierarchyTest, GrandchildrenNest) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<std::int64_t>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                              [v](TaskContext& c) {
                                c.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                                           [v](TaskContext& g) {
                                             g.read_write(v)[0] += 1;
                                           });
                                auto h = c.read_write(v);
                                h[0] *= 3;
                              });
                   auto h = t.read_write(v);
                   h[0] += 100;
                 });
  });
  // Serial: v=0; grandchild +1 -> 1; child *3 -> 3; parent +100 -> 103.
  EXPECT_EQ(rt.get(v)[0], 103);
}

TEST_P(HierarchyTest, SiblingSubtreesOnDisjointDataRunIndependently) {
  Runtime rt(config_for(GetParam()));
  auto a = rt.alloc<double>(1, "a");
  auto b = rt.alloc<double>(1, "b");
  rt.run([&](TaskContext& ctx) {
    auto subtree = [](SharedRef<double> obj, double seed) {
      return [obj, seed](TaskContext& t) {
        for (int i = 0; i < 4; ++i) {
          t.withonly([&](AccessDecl& d) { d.rd_wr(obj); },
                     [obj, seed](TaskContext& c) {
                       c.read_write(obj)[0] += seed;
                     });
        }
      };
    };
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(a); }, subtree(a, 1.5));
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(b); }, subtree(b, 2.5));
  });
  EXPECT_DOUBLE_EQ(rt.get(a)[0], 6.0);
  EXPECT_DOUBLE_EQ(rt.get(b)[0], 10.0);
}

TEST_P(HierarchyTest, ParentCompletesWhileChildrenOutstanding) {
  // A parent that spawns children and returns immediately: the runtime must
  // keep the children's effects ordered before later root tasks.
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<std::int64_t>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   for (int i = 0; i < 5; ++i) {
                     t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                                [v](TaskContext& c) {
                                  c.read_write(v)[0] += 1;
                                });
                   }
                   // parent returns without touching v again
                 });
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) { t.read_write(v)[0] *= 10; });
  });
  EXPECT_EQ(rt.get(v)[0], 50);
}

TEST_P(HierarchyTest, ChildInheritsDeferredCoverage) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.df_rd_wr(v); },
                 [v](TaskContext& t) {
                   // The parent never converts; the child does the work.
                   t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                              [v](TaskContext& c) {
                                c.read_write(v)[0] = 4.25;
                              });
                 });
  });
  EXPECT_DOUBLE_EQ(rt.get(v)[0], 4.25);
}

TEST_P(HierarchyTest, CoverageViolationInGrandchild) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  EXPECT_THROW(
      rt.run([&](TaskContext& ctx) {
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                     [v](TaskContext& t) {
                       t.withonly([&](AccessDecl& d) { d.rd(v); },
                                  [v](TaskContext& c) {
                                    // grandchild escalates rd -> wr: error
                                    c.withonly(
                                        [&](AccessDecl& d) { d.wr(v); },
                                        [](TaskContext&) {});
                                  });
                     });
      }),
      HierarchyViolationError);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, HierarchyTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade
