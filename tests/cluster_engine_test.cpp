// ClusterEngine end-to-end tests: real forked worker processes over Unix
// sockets, verified against SerialEngine on the same program text (the
// registry's portable cluster::spawn makes one program run on both).
//
// Covers the PR's acceptance criteria: a Jade program across 4 worker
// processes with serial-identical results; worker-spawned children;
// with-cont conversion and retire; commute serialization; placement;
// error propagation across the process boundary; engine reuse with host
// writes between runs; the debug coherence probe; and recovery from a
// SIGKILLed worker via the heartbeat failure detector.
#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <thread>
#include <vector>

#include "jade/cluster/cluster_engine.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/core/runtime.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

using cluster::BodyRegistry;
using cluster::get_ref;
using cluster::put_ref;

// --- registered bodies (file scope: registered before any engine forks) -----

const int kLeafSum = BodyRegistry::instance().ensure(
    "test.leaf_sum", [](TaskContext& t, WireReader& r) {
      const auto src = get_ref<double>(r);
      const auto dst = get_ref<double>(r);
      const double scale = r.get_f64();
      double sum = 0;
      for (double v : t.read(src)) sum += v;
      t.write(dst)[0] = sum * scale;
      t.charge(1.0);
    });

const int kChainStep = BodyRegistry::instance().ensure(
    "test.chain_step", [](TaskContext& t, WireReader& r) {
      const auto cell = get_ref<double>(r);
      const double inc = r.get_f64();
      auto c = t.read_write(cell);
      c[0] = c[0] * 2.0 + inc;
    });

const int kCommuteAdd = BodyRegistry::instance().ensure(
    "test.commute_add", [](TaskContext& t, WireReader& r) {
      const auto acc = get_ref<double>(r);
      const double delta = r.get_f64();
      t.commute(acc)[0] += delta;
    });

const int kConvertWrite = BodyRegistry::instance().ensure(
    "test.convert_write", [](TaskContext& t, WireReader& r) {
      const auto src = get_ref<double>(r);
      const auto dst = get_ref<double>(r);
      const double scale = r.get_f64();
      double sum = 0;
      for (double v : t.read(src)) sum += v;
      // Deferred-write right converts mid-body (Section 4.2).
      t.with_cont([&](AccessDecl& d) { d.wr(dst); });
      t.write(dst)[0] = sum * scale;
    });

const int kWriteThenRetire = BodyRegistry::instance().ensure(
    "test.write_then_retire", [](TaskContext& t, WireReader& r) {
      const auto obj = get_ref<double>(r);
      const double v = r.get_f64();
      t.read_write(obj)[0] = v;
      // Retire both rights: successors may read while this task lingers.
      t.with_cont([&](AccessDecl& d) {
        d.no_rd(obj);
        d.no_wr(obj);
      });
      t.charge(1.0);
    });

const int kSetVal = BodyRegistry::instance().ensure(
    "test.set_val", [](TaskContext& t, WireReader& r) {
      const auto dst = get_ref<double>(r);
      t.write(dst)[0] = r.get_f64();
    });

const int kSpawner = BodyRegistry::instance().ensure(
    "test.spawner", [](TaskContext& t, WireReader& r) {
      const std::uint32_t n = r.get_u32();
      for (std::uint32_t k = 0; k < n; ++k) {
        const auto dst = get_ref<double>(r);
        WireWriter args;
        put_ref(args, dst);
        args.put_f64(3.0 * k + 1.0);
        cluster::spawn(t, kSetVal, std::move(args),
                       [&](AccessDecl& d) { d.wr(dst); }, "set");
      }
    });

const int kWriteMachine = BodyRegistry::instance().ensure(
    "test.write_machine", [](TaskContext& t, WireReader& r) {
      const auto dst = get_ref<double>(r);
      t.write(dst)[0] = static_cast<double>(t.machine());
    });

const int kSpinWrite = BodyRegistry::instance().ensure(
    "test.spin_write", [](TaskContext& t, WireReader& r) {
      const auto dst = get_ref<double>(r);
      const double v = r.get_f64();
      const std::uint32_t ms = r.get_u32();
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
      while (std::chrono::steady_clock::now() < until) {
      }
      t.write(dst)[0] = v;
      t.charge(static_cast<double>(ms));
    });

const int kReadUndeclared = BodyRegistry::instance().ensure(
    "test.read_undeclared", [](TaskContext& t, WireReader& r) {
      const auto declared = get_ref<double>(r);
      const auto undeclared = get_ref<double>(r);
      (void)t.read(declared);
      (void)t.read(undeclared);  // not in the spec: must throw
    });

// --- helpers ----------------------------------------------------------------

RuntimeConfig cluster_config(int workers = 4, int spares = 1) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kCluster;
  cfg.cluster_proc.workers = workers;
  cfg.cluster_proc.spares = spares;
  return cfg;
}

RuntimeConfig serial_config() {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSerial;
  return cfg;
}

cluster::ClusterEngine& cluster_of(Runtime& rt) {
  auto* eng = dynamic_cast<cluster::ClusterEngine*>(&rt.engine());
  EXPECT_NE(eng, nullptr);
  return *eng;
}

/// Runs the fan-out program (kLeaves independent readers of one source) on
/// `cfg` and returns the output vector.
std::vector<double> run_fanout(const RuntimeConfig& cfg, int leaves) {
  Runtime rt(cfg);
  const std::vector<double> init = {1.0, 2.5, 4.0, -1.5};
  auto src = rt.alloc_init<double>(init, "src");
  std::vector<SharedRef<double>> out;
  for (int k = 0; k < leaves; ++k)
    out.push_back(rt.alloc<double>(1, "out" + std::to_string(k)));
  rt.run([&](TaskContext& ctx) {
    for (int k = 0; k < leaves; ++k) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, out[static_cast<std::size_t>(k)]);
      args.put_f64(k + 1.0);
      cluster::spawn(ctx, kLeafSum, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(out[static_cast<std::size_t>(k)]);
      });
    }
  });
  std::vector<double> result;
  for (auto& o : out) result.push_back(rt.get(o)[0]);
  return result;
}

// --- tests ------------------------------------------------------------------

TEST(ClusterEngine, ReadFanoutMatchesSerial) {
  const std::vector<double> serial = run_fanout(serial_config(), 16);
  const std::vector<double> clustered = run_fanout(cluster_config(), 16);
  EXPECT_EQ(clustered, serial);
}

TEST(ClusterEngine, DependencyChainMatchesSerial) {
  const auto run_chain = [](const RuntimeConfig& cfg) {
    Runtime rt(cfg);
    auto cell = rt.alloc<double>(1, "cell");
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 12; ++i) {
        WireWriter args;
        put_ref(args, cell);
        args.put_f64(i + 1.0);
        cluster::spawn(ctx, kChainStep, std::move(args),
                       [&](AccessDecl& d) { d.rd_wr(cell); });
      }
    });
    return rt.get(cell)[0];
  };
  // Every chain hop crosses process boundaries on the cluster: the writer
  // ships its result back and the next reader gets a fresh payload.
  EXPECT_DOUBLE_EQ(run_chain(cluster_config()), run_chain(serial_config()));
}

TEST(ClusterEngine, CommuteAccumulatorMatchesSerial) {
  const auto run_acc = [](const RuntimeConfig& cfg) {
    Runtime rt(cfg);
    auto acc = rt.alloc<double>(1, "acc");
    rt.run([&](TaskContext& ctx) {
      for (int k = 1; k <= 16; ++k) {
        WireWriter args;
        put_ref(args, acc);
        args.put_f64(static_cast<double>(k));
        cluster::spawn(ctx, kCommuteAdd, std::move(args),
                       [&](AccessDecl& d) { d.cm(acc); });
      }
    });
    return rt.get(acc)[0];
  };
  EXPECT_DOUBLE_EQ(run_acc(cluster_config()), 136.0);
  EXPECT_DOUBLE_EQ(run_acc(serial_config()), 136.0);
}

TEST(ClusterEngine, WithContConversionMatchesSerial) {
  const auto run_prog = [](const RuntimeConfig& cfg) {
    Runtime rt(cfg);
    const std::vector<double> init = {3.0, 4.0};
    auto src = rt.alloc_init<double>(init, "src");
    auto dst = rt.alloc<double>(1, "dst");
    rt.run([&](TaskContext& ctx) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, dst);
      args.put_f64(10.0);
      cluster::spawn(ctx, kConvertWrite, std::move(args),
                     [&](AccessDecl& d) {
                       d.rd(src);
                       d.df_wr(dst);
                     });
    });
    return rt.get(dst)[0];
  };
  EXPECT_DOUBLE_EQ(run_prog(cluster_config()), 70.0);
  EXPECT_DOUBLE_EQ(run_prog(serial_config()), 70.0);
}

TEST(ClusterEngine, WithContRetireReleasesSuccessors) {
  const auto run_prog = [](const RuntimeConfig& cfg) {
    Runtime rt(cfg);
    auto obj = rt.alloc<double>(1, "obj");
    auto seen = rt.alloc<double>(1, "seen");
    rt.run([&](TaskContext& ctx) {
      WireWriter a1;
      put_ref(a1, obj);
      a1.put_f64(42.0);
      cluster::spawn(ctx, kWriteThenRetire, std::move(a1),
                     [&](AccessDecl& d) { d.rd_wr(obj); });
      WireWriter a2;
      put_ref(a2, obj);
      put_ref(a2, seen);
      a2.put_f64(1.0);
      cluster::spawn(ctx, kLeafSum, std::move(a2), [&](AccessDecl& d) {
        d.rd(obj);
        d.wr(seen);
      });
    });
    return rt.get(seen)[0];
  };
  // The retire flushed 42.0 to the coordinator, so the successor's read —
  // on a different worker — must observe it.
  EXPECT_DOUBLE_EQ(run_prog(cluster_config()), 42.0);
  EXPECT_DOUBLE_EQ(run_prog(serial_config()), 42.0);
}

TEST(ClusterEngine, WorkerSpawnedChildrenMatchSerial) {
  const auto run_prog = [](const RuntimeConfig& cfg) {
    constexpr int kChildren = 8;
    Runtime rt(cfg);
    std::vector<SharedRef<double>> out;
    for (int k = 0; k < kChildren; ++k)
      out.push_back(rt.alloc<double>(1, "out" + std::to_string(k)));
    rt.run([&](TaskContext& ctx) {
      WireWriter args;
      args.put_u32(kChildren);
      for (auto& o : out) put_ref(args, o);
      cluster::spawn(ctx, kSpawner, std::move(args), [&](AccessDecl& d) {
        for (auto& o : out) d.df_wr(o);
      });
    });
    std::vector<double> result;
    for (auto& o : out) result.push_back(rt.get(o)[0]);
    return result;
  };
  const auto serial = run_prog(serial_config());
  const auto clustered = run_prog(cluster_config());
  EXPECT_EQ(clustered, serial);
  for (int k = 0; k < 8; ++k)
    EXPECT_DOUBLE_EQ(clustered[static_cast<std::size_t>(k)], 3.0 * k + 1.0);
}

TEST(ClusterEngine, PlacementPinsTasksToMachines) {
  Runtime rt(cluster_config(4));
  std::vector<SharedRef<double>> out;
  for (int m = 0; m < 4; ++m)
    out.push_back(rt.alloc<double>(1, "m" + std::to_string(m)));
  rt.run([&](TaskContext& ctx) {
    for (int m = 0; m < 4; ++m) {
      WireWriter args;
      put_ref(args, out[static_cast<std::size_t>(m)]);
      cluster::spawn(ctx, kWriteMachine, std::move(args),
                     [&](AccessDecl& d) { d.wr(out[static_cast<std::size_t>(m)]); },
                     "pinned", /*placement=*/m);
    }
  });
  for (int m = 0; m < 4; ++m)
    EXPECT_DOUBLE_EQ(rt.get(out[static_cast<std::size_t>(m)])[0],
                     static_cast<double>(m))
        << "task pinned to machine " << m << " ran elsewhere";
}

TEST(ClusterEngine, UndeclaredAccessCrossesTheProcessBoundary) {
  Runtime rt(cluster_config());
  auto declared = rt.alloc<double>(1, "declared");
  auto undeclared = rt.alloc<double>(1, "undeclared");
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 WireWriter args;
                 put_ref(args, declared);
                 put_ref(args, undeclared);
                 cluster::spawn(ctx, kReadUndeclared, std::move(args),
                                [&](AccessDecl& d) { d.rd(declared); });
               }),
               UndeclaredAccessError);
}

TEST(ClusterEngine, ClosureSpawnRejectedWithClearError) {
  Runtime rt(cluster_config());
  auto obj = rt.alloc<double>(1, "x");
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.wr(obj); },
                              [](TaskContext&) {});
               }),
               ConfigError);
}

TEST(ClusterEngine, EngineReuseShipsFreshHostWrites) {
  Runtime rt(cluster_config());
  const std::vector<double> first = {1.0, 1.0};
  auto src = rt.alloc_init<double>(first, "src");
  auto dst = rt.alloc<double>(1, "dst");
  const auto program = [&](TaskContext& ctx) {
    WireWriter args;
    put_ref(args, src);
    put_ref(args, dst);
    args.put_f64(1.0);
    cluster::spawn(ctx, kLeafSum, std::move(args), [&](AccessDecl& d) {
      d.rd(src);
      d.wr(dst);
    });
  };
  rt.run(program);
  EXPECT_DOUBLE_EQ(rt.get(dst)[0], 2.0);

  // Host write between runs: workers' cached copies are now stale and the
  // shipped-version protocol must re-ship, not reuse.
  const std::vector<double> second = {5.0, 7.0};
  rt.put(src, std::span<const double>(second));
  rt.run(program);
  EXPECT_DOUBLE_EQ(rt.get(dst)[0], 12.0);
}

TEST(ClusterEngine, DebugProbeConfirmsWorkerCopiesMatchCanonical) {
  Runtime rt(cluster_config());
  const std::vector<double> init = {2.0, 3.0, 5.0};
  auto src = rt.alloc_init<double>(init, "src");
  std::vector<SharedRef<double>> out;
  for (int k = 0; k < 8; ++k)
    out.push_back(rt.alloc<double>(1, "out" + std::to_string(k)));
  rt.run([&](TaskContext& ctx) {
    for (int k = 0; k < 8; ++k) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, out[static_cast<std::size_t>(k)]);
      args.put_f64(k + 1.0);
      cluster::spawn(ctx, kLeafSum, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(out[static_cast<std::size_t>(k)]);
      });
    }
  });
  cluster::ClusterEngine& eng = cluster_of(rt);
  EXPECT_TRUE(eng.debug_probe(src.id()));
  for (auto& o : out) EXPECT_TRUE(eng.debug_probe(o.id()));
}

TEST(ClusterEngine, SurvivesSigkilledWorker) {
  RuntimeConfig cfg = cluster_config(4, /*spares=*/2);
  cfg.cluster_proc.heartbeat_interval = 0.01;
  cfg.cluster_proc.miss_threshold = 3;
  Runtime rt(cfg);
  constexpr int kTasks = 24;
  std::vector<SharedRef<double>> out;
  for (int k = 0; k < kTasks; ++k)
    out.push_back(rt.alloc<double>(1, "out" + std::to_string(k)));

  cluster::ClusterEngine& eng = cluster_of(rt);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    const pid_t pid = eng.worker_pid(2);
    if (pid > 0) ::kill(pid, SIGKILL);
  });
  rt.run([&](TaskContext& ctx) {
    for (int k = 0; k < kTasks; ++k) {
      WireWriter args;
      put_ref(args, out[static_cast<std::size_t>(k)]);
      args.put_f64(k + 0.5);
      args.put_u32(15);  // ms of spin: the kill lands mid-run
      cluster::spawn(ctx, kSpinWrite, std::move(args), [&](AccessDecl& d) {
        d.wr(out[static_cast<std::size_t>(k)]);
      });
    }
  });
  killer.join();

  for (int k = 0; k < kTasks; ++k)
    EXPECT_DOUBLE_EQ(rt.get(out[static_cast<std::size_t>(k)])[0], k + 0.5);
  EXPECT_GE(rt.stats().machine_crashes, 1u);
  EXPECT_GE(rt.metrics().counter("cluster.worker_deaths").value(), 1.0);
  EXPECT_GE(rt.metrics().counter("cluster.workers_respawned").value(), 1.0);

  // The engine keeps serving after the crash: a fresh run still works.
  rt.run([&](TaskContext& ctx) {
    WireWriter args;
    put_ref(args, out[0]);
    args.put_f64(-1.0);
    args.put_u32(0);
    cluster::spawn(ctx, kSpinWrite, std::move(args),
                   [&](AccessDecl& d) { d.wr(out[0]); });
  });
  EXPECT_DOUBLE_EQ(rt.get(out[0])[0], -1.0);
}

TEST(ClusterEngine, BadOptionsRejected) {
  using cluster::ClusterEngine;
  using cluster::Options;
  {
    Options o;
    o.workers = 0;
    EXPECT_THROW(ClusterEngine e(o), ConfigError);
  }
  {
    Options o;
    o.spares = -1;
    EXPECT_THROW(ClusterEngine e(o), ConfigError);
  }
  {
    Options o;
    o.heartbeat_interval = 0;
    EXPECT_THROW(ClusterEngine e(o), ConfigError);
  }
  {
    Options o;
    o.miss_threshold = 0;
    EXPECT_THROW(ClusterEngine e(o), ConfigError);
  }
}

TEST(ClusterEngine, StatsAggregateAcrossProcesses) {
  Runtime rt(cluster_config());
  const std::vector<double> init = {1.0, 2.0};
  auto src = rt.alloc_init<double>(init, "src");
  std::vector<SharedRef<double>> out;
  for (int k = 0; k < 8; ++k)
    out.push_back(rt.alloc<double>(1, "o" + std::to_string(k)));
  rt.run([&](TaskContext& ctx) {
    for (int k = 0; k < 8; ++k) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, out[static_cast<std::size_t>(k)]);
      args.put_f64(1.0);
      cluster::spawn(ctx, kLeafSum, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(out[static_cast<std::size_t>(k)]);
      });
    }
  });
  EXPECT_GE(rt.stats().tasks_created, 8u);
  // Each kLeafSum charges 1.0 unit; charges cross the wire in DoneMsg.
  EXPECT_DOUBLE_EQ(rt.stats().total_charged_work, 8.0);
  EXPECT_GT(rt.stats().messages, 0u);
  EXPECT_GT(rt.stats().bytes_sent, 0u);
  EXPECT_GT(rt.stats().heartbeats_sent, 0u);
}

}  // namespace
}  // namespace jade
