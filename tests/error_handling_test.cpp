// Failure-injection tests: exceptions escaping task bodies, configuration
// errors, and misuse of the API must surface as exceptions from run() (or
// construction) on every engine — never hangs, crashes or silent corruption.
#include <gtest/gtest.h>

#include <stdexcept>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

class ErrorTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ErrorTest, ExceptionInTaskBodyPropagates) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<int>(1);
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.wr(v); },
                              [](TaskContext&) {
                                throw std::runtime_error("task boom");
                              });
               }),
               std::runtime_error);
}

TEST_P(ErrorTest, ExceptionInRootBodyPropagates) {
  Runtime rt(config_for(GetParam()));
  EXPECT_THROW(
      rt.run([&](TaskContext&) { throw std::logic_error("root boom"); }),
      std::logic_error);
}

TEST_P(ErrorTest, ExceptionAmongManyTasksStillPropagates) {
  Runtime rt(config_for(GetParam()));
  std::vector<SharedRef<int>> objs;
  for (int i = 0; i < 16; ++i) objs.push_back(rt.alloc<int>(1));
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 for (int i = 0; i < 16; ++i) {
                   auto o = objs[static_cast<std::size_t>(i)];
                   ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                                [o, i](TaskContext& t) {
                                  t.read_write(o)[0] = i;
                                  if (i == 7)
                                    throw std::runtime_error("mid boom");
                                });
                 }
               }),
               std::runtime_error);
}

TEST_P(ErrorTest, ExceptionInNestedChildPropagates) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<int>(1);
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                              [v](TaskContext& t) {
                                t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                                           [](TaskContext&) {
                                             throw std::runtime_error(
                                                 "child boom");
                                           });
                              });
               }),
               std::runtime_error);
}

TEST_P(ErrorTest, SpecEvaluationExceptionPropagates) {
  // The access-declaration callback is user code too.
  Runtime rt(config_for(GetParam()));
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly(
                     [&](AccessDecl&) {
                       throw std::runtime_error("spec boom");
                     },
                     [](TaskContext&) {});
               }),
               std::runtime_error);
}

TEST_P(ErrorTest, SecondRunAccepted) {
  // Engines support sequential runs on one instance (engine reuse, see
  // engine_reuse_test.cpp); the second run sees a fresh task graph.
  Runtime rt(config_for(GetParam()));
  rt.run([](TaskContext&) {});
  EXPECT_NO_THROW(rt.run([](TaskContext&) {}));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, ErrorTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                             case EngineKind::kCluster: return "Cluster";
                           }
                           return "Unknown";
                         });

TEST(ConfigErrors, BadClusterRejectedAtConstruction) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;  // empty cluster
  EXPECT_THROW(Runtime rt(std::move(cfg)), ConfigError);
}

TEST(ConfigErrors, ZeroThreadsRejected) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 0;
  EXPECT_THROW(Runtime rt(std::move(cfg)), InternalError);
}

TEST(ConfigErrors, PlacementOutOfRangeRejected) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(2);
  Runtime rt(std::move(cfg));
  EXPECT_THROW(rt.alloc<int>(4, "x", /*home=*/7), InternalError);
}

TEST(ConfigErrors, NullObjectInSpecRejected) {
  Runtime rt;
  SharedRef<double> null_ref;  // never allocated
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.rd(null_ref); },
                              [](TaskContext&) {});
               }),
               InternalError);
}

}  // namespace
}  // namespace jade
