// Sim-determinism regression under fault injection: the same FaultConfig
// seed must produce the same fault schedule, the same recovery decisions,
// and therefore bit-identical results AND bit-identical RuntimeStats across
// runs.  This is what makes a chaos failure replayable from its seed alone.
#include <gtest/gtest.h>

#include <vector>

#include "jade/apps/cholesky.hpp"
#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig sim_mica(FaultConfig fault) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::mica(8);
  cfg.fault = std::move(fault);
  return cfg;
}

/// Every counter two identical runs must agree on, FT block included.
/// Virtual times are compared exactly: the simulator is deterministic, so
/// even doubles must match bit for bit.
void expect_identical_stats(const RuntimeStats& a, const RuntimeStats& b) {
  EXPECT_EQ(a.tasks_created, b.tasks_created);
  EXPECT_EQ(a.tasks_migrated, b.tasks_migrated);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.object_moves, b.object_moves);
  EXPECT_EQ(a.object_copies, b.object_copies);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.machine_crashes, b.machine_crashes);
  EXPECT_EQ(a.tasks_killed, b.tasks_killed);
  EXPECT_EQ(a.tasks_requeued, b.tasks_requeued);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.message_retries, b.message_retries);
  EXPECT_EQ(a.heartbeats_sent, b.heartbeats_sent);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.objects_rehomed, b.objects_rehomed);
  EXPECT_EQ(a.objects_restored, b.objects_restored);
  EXPECT_EQ(a.objects_lost, b.objects_lost);
  EXPECT_EQ(a.wasted_charged_work, b.wasted_charged_work);
  EXPECT_EQ(a.detection_latency_total, b.detection_latency_total);
}

FaultConfig chaotic(std::uint64_t seed, SimTime window_end) {
  FaultConfig f;
  f.enabled = true;
  f.seed = seed;
  f.auto_crashes = 2;
  f.crash_window_begin = 0.1 * window_end;
  f.crash_window_end = 0.8 * window_end;
  f.drop_probability = 0.05;
  return f;
}

TEST(FtDeterminism, SameSeedSameLwsRunBitForBit) {
  apps::WaterConfig wc;
  wc.molecules = 216;
  wc.groups = 13;
  wc.timesteps = 2;
  const auto initial = apps::make_water(wc);

  auto run = [&](FaultConfig f) {
    Runtime rt(sim_mica(std::move(f)));
    auto w = apps::upload_water(rt, wc, initial);
    rt.run([&](TaskContext& ctx) { apps::water_run_jade(ctx, w); });
    return std::pair{apps::download_water(rt, w).pos, rt.stats()};
  };

  // Window sized from a quiet run so crashes land mid-execution.
  FaultConfig quiet;
  quiet.enabled = true;
  const auto [quiet_pos, quiet_stats] = run(quiet);

  const auto a = run(chaotic(42, quiet_stats.finish_time));
  const auto b = run(chaotic(42, quiet_stats.finish_time));
  EXPECT_EQ(a.first, b.first);
  expect_identical_stats(a.second, b.second);
  EXPECT_EQ(a.second.machine_crashes, 2u);

  // A different seed crashes different machines at different times; the
  // *result* still matches (serial semantics), the schedule does not.
  const auto c = run(chaotic(43, quiet_stats.finish_time));
  EXPECT_EQ(c.first, a.first);
  EXPECT_NE(a.second.finish_time, c.second.finish_time);
}

TEST(FtDeterminism, SameSeedSameCholeskyRunBitForBit) {
  const auto m = apps::make_spd(48, 0.15, 21);

  auto run = [&](FaultConfig f) {
    Runtime rt(sim_mica(std::move(f)));
    auto jm = apps::upload_matrix(rt, m);
    rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
    return std::pair{apps::download_matrix(rt, jm).cols, rt.stats()};
  };

  FaultConfig quiet;
  quiet.enabled = true;
  const auto [quiet_cols, quiet_stats] = run(quiet);

  const auto a = run(chaotic(17, quiet_stats.finish_time));
  const auto b = run(chaotic(17, quiet_stats.finish_time));
  EXPECT_EQ(a.first, b.first);
  expect_identical_stats(a.second, b.second);
}

TEST(FtDeterminism, QuietFaultLayerIsDeterministicToo) {
  // enabled=true with no faults still adds heartbeats and the transport
  // decorator; two such runs must agree exactly (regression guard for
  // accidental nondeterminism in the fault layer itself).
  apps::WaterConfig wc;
  wc.molecules = 125;
  wc.groups = 5;
  wc.timesteps = 1;
  const auto initial = apps::make_water(wc);

  auto run = [&] {
    FaultConfig f;
    f.enabled = true;
    f.drop_probability = 0.05;
    Runtime rt(sim_mica(std::move(f)));
    auto w = apps::upload_water(rt, wc, initial);
    rt.run([&](TaskContext& ctx) { apps::water_run_jade(ctx, w); });
    return std::pair{apps::download_water(rt, w).pos, rt.stats()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  expect_identical_stats(a.second, b.second);
}

}  // namespace
}  // namespace jade
