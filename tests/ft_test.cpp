// Unit tests for the fault-tolerance subsystem's building blocks: fault
// plans (seeded crash schedules), the fault injector's ground truth and
// drop stream, heartbeat failure detection, object recovery planning,
// directory crash surgery, the lossy network decorator, and the counter
// observability layer.  Everything here runs without the simulator; the
// end-to-end behavior is covered by ft_chaos_test and ft_determinism_test.
#include <gtest/gtest.h>

#include <vector>

#include "jade/engine/engine.hpp"
#include "jade/ft/failure_detector.hpp"
#include "jade/ft/fault_injector.hpp"
#include "jade/ft/fault_plan.hpp"
#include "jade/ft/ft_stats.hpp"
#include "jade/ft/recovery.hpp"
#include "jade/net/faulty.hpp"
#include "jade/net/network.hpp"
#include "jade/store/directory.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

// --- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, AutoScheduleIsSeedDeterministic) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.auto_crashes = 3;
  cfg.crash_window_begin = 0.1;
  cfg.crash_window_end = 0.9;
  cfg.seed = 77;
  const auto a = FaultPlan::make(cfg, 8);
  const auto b = FaultPlan::make(cfg, 8);
  ASSERT_EQ(a.crashes().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.crashes()[i].machine, b.crashes()[i].machine);
    EXPECT_DOUBLE_EQ(a.crashes()[i].time, b.crashes()[i].time);
  }
  cfg.seed = 78;
  const auto c = FaultPlan::make(cfg, 8);
  bool differs = false;
  for (std::size_t i = 0; i < 3; ++i)
    if (c.crashes()[i].machine != a.crashes()[i].machine ||
        c.crashes()[i].time != a.crashes()[i].time)
      differs = true;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, AutoScheduleRespectsWindowAndMachines) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.auto_crashes = 5;
  cfg.crash_window_begin = 0.2;
  cfg.crash_window_end = 0.6;
  const auto plan = FaultPlan::make(cfg, 6);  // machines 1..5 all crash
  ASSERT_EQ(plan.crashes().size(), 5u);
  std::vector<bool> seen(6, false);
  SimTime prev = 0;
  for (const auto& c : plan.crashes()) {
    EXPECT_GE(c.machine, 1);
    EXPECT_LT(c.machine, 6);
    EXPECT_FALSE(seen[c.machine]) << "machine crashed twice";
    seen[c.machine] = true;
    EXPECT_GE(c.time, 0.2);
    EXPECT_LT(c.time, 0.6);
    EXPECT_GE(c.time, prev);  // sorted by time
    prev = c.time;
  }
}

TEST(FaultPlan, RejectsBadSchedules) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crashes = {{0, 0.5}};  // machine 0 is the reliable coordinator
  EXPECT_THROW(FaultPlan::make(cfg, 4), ConfigError);

  cfg.crashes = {{7, 0.5}};  // out of range
  EXPECT_THROW(FaultPlan::make(cfg, 4), ConfigError);

  cfg.crashes = {{2, 0.3}, {2, 0.7}};  // same machine twice
  EXPECT_THROW(FaultPlan::make(cfg, 4), ConfigError);

  cfg.crashes.clear();
  cfg.auto_crashes = 4;  // only 3 crashable machines in a 4-machine cluster
  EXPECT_THROW(FaultPlan::make(cfg, 4), ConfigError);

  cfg.auto_crashes = 0;
  cfg.drop_probability = 1.0;  // p == 1 would retransmit forever
  EXPECT_THROW(FaultPlan::make(cfg, 4), ConfigError);
}

TEST(FaultPlan, ExplicitScheduleSortedByTime) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crashes = {{3, 0.9}, {1, 0.2}, {2, 0.5}};
  const auto plan = FaultPlan::make(cfg, 4);
  ASSERT_EQ(plan.crashes().size(), 3u);
  EXPECT_EQ(plan.crashes()[0].machine, 1);
  EXPECT_EQ(plan.crashes()[1].machine, 2);
  EXPECT_EQ(plan.crashes()[2].machine, 3);
}

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjector, TracksUpDownState) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.crashes = {{2, 0.5}};
  FaultInjector inj(FaultPlan::make(cfg, 4), 4);
  EXPECT_EQ(inj.up_count(), 4);
  EXPECT_TRUE(inj.machine_up(2));

  inj.record_crash(2, 0.5);
  EXPECT_FALSE(inj.machine_up(2));
  EXPECT_EQ(inj.up_count(), 3);
  EXPECT_EQ(inj.up_mask(), (std::vector<std::uint8_t>{1, 1, 0, 1}));
  EXPECT_DOUBLE_EQ(inj.health(2).crashed_at, 0.5);

  inj.record_detected(2, 0.53);
  EXPECT_DOUBLE_EQ(inj.health(2).detected_at, 0.53);
}

TEST(FaultInjector, DropStreamIsSeededAndSkipsDeadEndpoints) {
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.drop_probability = 0.5;
  cfg.seed = 99;
  const auto plan = FaultPlan::make(cfg, 4);
  FaultInjector a(plan, 4);
  FaultInjector b(plan, 4);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(a.should_drop(1, 2), b.should_drop(1, 2)) << "message " << i;

  // Dead endpoints never "drop" (the message vanishes at the NIC instead;
  // no retransmission) and must not consume the drop stream.
  a.record_crash(3, 0.1);
  b.record_crash(3, 0.1);
  EXPECT_FALSE(a.should_drop(1, 3));
  EXPECT_FALSE(a.should_drop(3, 1));
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.should_drop(1, 2), b.should_drop(1, 2));
}

// --- FailureDetector ------------------------------------------------------

TEST(FailureDetector, DeclaresStaleMachinesOnce) {
  FailureDetector det(4, /*interval=*/0.01, /*miss_threshold=*/3);
  det.heartbeat_received(1, 0.01);
  det.heartbeat_received(2, 0.01);
  det.heartbeat_received(3, 0.01);
  EXPECT_TRUE(det.sweep(0.02).empty());

  det.heartbeat_received(1, 0.02);
  det.heartbeat_received(3, 0.02);
  // Machine 2 last heard at 0.01; threshold is 0.03 of silence.
  EXPECT_TRUE(det.sweep(0.03).empty());
  const auto stale = det.sweep(0.045);
  EXPECT_EQ(stale, (std::vector<MachineId>{2}));
  EXPECT_TRUE(det.suspected(2));
  // Already suspected: not reported again.
  EXPECT_TRUE(det.sweep(0.046).empty());
}

TEST(FailureDetector, HeartbeatClearsSuspicion) {
  FailureDetector det(3, 0.01, 2);
  const auto stale = det.sweep(0.05);  // nobody ever heartbeated
  EXPECT_EQ(stale, (std::vector<MachineId>{1, 2}));
  det.heartbeat_received(1, 0.06);  // late heartbeat: it was congestion
  EXPECT_FALSE(det.suspected(1));
  EXPECT_TRUE(det.suspected(2));
  EXPECT_DOUBLE_EQ(det.last_heard(1), 0.06);
}

TEST(FailureDetector, CoordinatorNeverSuspected) {
  FailureDetector det(2, 0.01, 1);
  const auto stale = det.sweep(10.0);
  for (MachineId m : stale) EXPECT_NE(m, 0);
}

// --- plan_object_recovery -------------------------------------------------

ObjectInfo make_info(ObjectId id, std::size_t doubles) {
  return ObjectInfo{id, TypeDescriptor::array_of<double>(doubles),
                    "o" + std::to_string(id)};
}

TEST(RecoveryPlan, CoversEveryFate) {
  ObjectDirectory dir(4);
  dir.add_object(make_info(1, 8), /*home=*/2);  // sole copy on the victim
  dir.add_object(make_info(2, 8), /*home=*/2);  // replicated: survivors hold it
  dir.replicate_to(2, 1);
  dir.replicate_to(2, 3);
  dir.add_object(make_info(3, 8), /*home=*/0);  // victim holds a mere replica
  dir.replicate_to(3, 2);
  dir.add_object(make_info(4, 8), /*home=*/1);  // untouched by the crash

  const std::vector<std::uint8_t> up{1, 1, 0, 1};  // machine 2 down

  // Stable storage on: the sole-copy object restores.
  auto plan = plan_object_recovery(dir, 2, up, /*stable_storage=*/true);
  ASSERT_EQ(plan.size(), 3u);  // objects 1..3, in ObjectId order

  EXPECT_EQ(plan[0].obj, 1);
  EXPECT_EQ(plan[0].fate, ObjectFate::kRestored);
  EXPECT_GE(plan[0].new_home, 0);
  EXPECT_TRUE(up[plan[0].new_home]);

  EXPECT_EQ(plan[1].obj, 2);
  EXPECT_EQ(plan[1].fate, ObjectFate::kRehomed);
  EXPECT_TRUE(plan[1].owner_moved);
  EXPECT_EQ(plan[1].new_home, 1);  // lowest-index surviving replica holder

  EXPECT_EQ(plan[2].obj, 3);
  EXPECT_EQ(plan[2].fate, ObjectFate::kRehomed);
  EXPECT_FALSE(plan[2].owner_moved);  // replica drop; owner 0 unchanged
  EXPECT_EQ(plan[2].new_home, 0);

  // Stable storage off: the sole-copy object is lost.
  plan = plan_object_recovery(dir, 2, up, /*stable_storage=*/false);
  EXPECT_EQ(plan[0].fate, ObjectFate::kLost);
  EXPECT_EQ(plan[0].new_home, -1);
  EXPECT_EQ(plan[1].fate, ObjectFate::kRehomed);  // replicas unaffected
}

// --- ObjectDirectory crash surgery ---------------------------------------

TEST(DirectorySurgery, RehomeAndRestoreAndLost) {
  ObjectDirectory dir(4);
  dir.add_object(make_info(1, 4), 2);
  dir.replicate_to(1, 3);
  const auto v0 = dir.version(1);

  // Home re-election: machine 3's replica becomes authoritative.
  dir.set_owner(1, 3);
  dir.drop_copy(1, 2);
  EXPECT_EQ(dir.owner(1), 3);
  EXPECT_EQ(dir.holders(1), (std::vector<MachineId>{3}));
  EXPECT_EQ(dir.version(1), v0 + 1);  // ownership moved
  EXPECT_FALSE(dir.lost(1));

  // Sole-copy loss then restore from stable storage.
  dir.add_object(make_info(2, 4), 2);
  dir.drop_copy(2, 2);  // sole copy may be dropped (the step before restore)
  dir.restore_to(2, 1);
  EXPECT_EQ(dir.owner(2), 1);
  EXPECT_EQ(dir.holders(2), (std::vector<MachineId>{1}));

  // Sole-copy loss without stable storage.
  dir.add_object(make_info(3, 4), 2);
  dir.drop_copy(3, 2);
  dir.mark_lost(3);
  EXPECT_TRUE(dir.lost(3));
}

// --- FaultyNetwork --------------------------------------------------------

TEST(FaultyNetwork, PassThroughWhenHookNeverDrops) {
  FaultyNetConfig cfg;
  FaultyNetwork net(std::make_unique<IdealNet>(1e-3, 1e6), cfg,
                    [](MachineId, MachineId) { return false; });
  EXPECT_DOUBLE_EQ(net.schedule_transfer(0, 1, 1000, 0.0), 2e-3);
  EXPECT_EQ(net.messages_dropped(), 0u);
  EXPECT_EQ(net.message_retries(), 0u);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.name(), "faulty(ideal)");
}

TEST(FaultyNetwork, RetransmitsWithExponentialBackoff) {
  FaultyNetConfig cfg;
  cfg.initial_retry_timeout = 1e-3;
  cfg.max_retry_timeout = 64e-3;
  cfg.max_send_attempts = 10;
  int drops_left = 3;
  FaultyNetwork net(std::make_unique<IdealNet>(0.0, 1e9), cfg,
                    [&](MachineId, MachineId) { return drops_left-- > 0; });
  // Three doomed attempts back off 1ms, 2ms, 4ms; the 4th delivers.
  // Transfer time itself is ~0 (1 GB/s, zero latency).
  const SimTime arrival = net.schedule_transfer(0, 1, 8, 0.0);
  EXPECT_NEAR(arrival, 7e-3, 1e-6);
  EXPECT_EQ(net.messages_dropped(), 3u);
  EXPECT_EQ(net.message_retries(), 3u);
}

TEST(FaultyNetwork, AttemptCapDeliversTheLastTry) {
  FaultyNetConfig cfg;
  cfg.initial_retry_timeout = 1e-3;
  cfg.max_send_attempts = 3;
  int attempts = 0;
  FaultyNetwork net(std::make_unique<IdealNet>(0.0, 1e9), cfg,
                    [&](MachineId, MachineId) {
                      ++attempts;
                      return true;  // would drop everything forever
                    });
  const SimTime arrival = net.schedule_transfer(0, 1, 8, 0.0);
  // Attempts 1 and 2 drop (backing off 1ms + 2ms); attempt 3 is forced
  // through.  The hook is not consulted for the forced final attempt.
  EXPECT_EQ(attempts, 2);
  EXPECT_NEAR(arrival, 3e-3, 1e-6);
  EXPECT_EQ(net.messages_dropped(), 2u);
}

TEST(FaultyNetwork, ResetClearsEverything) {
  FaultyNetConfig cfg;
  bool drop_once = true;
  FaultyNetwork net(std::make_unique<IdealNet>(0.0, 1e9), cfg,
                    [&](MachineId, MachineId) {
                      const bool d = drop_once;
                      drop_once = false;
                      return d;
                    });
  net.schedule_transfer(0, 1, 100, 0.0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.reset();
  EXPECT_EQ(net.messages_dropped(), 0u);
  EXPECT_EQ(net.message_retries(), 0u);
  EXPECT_EQ(net.stats().messages, 0u);
}

// --- CounterSet / fault_recovery_counters ---------------------------------

TEST(CounterSet, PreservesOrderAndLooksUpByName) {
  CounterSet c;
  c.add("alpha", 3);
  c.add("beta", 0);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.name(0), "alpha");
  EXPECT_EQ(c.value(0), 3u);
  EXPECT_EQ(c.value("beta"), 0u);
  EXPECT_EQ(c.value("missing"), 0u);  // absent counters read as zero
}

TEST(FtStats, CountersRoundTripFromRuntimeStats) {
  RuntimeStats s;
  s.machine_crashes = 2;
  s.tasks_killed = 7;
  s.tasks_requeued = 7;
  s.messages_dropped = 13;
  s.objects_rehomed = 4;
  s.wasted_charged_work = 123.9;
  s.detection_latency_total = 0.025;  // seconds -> 25000 us
  const CounterSet c = fault_recovery_counters(s);
  EXPECT_EQ(c.value("machine_crashes"), 2u);
  EXPECT_EQ(c.value("tasks_killed"), 7u);
  EXPECT_EQ(c.value("tasks_requeued"), 7u);
  EXPECT_EQ(c.value("messages_dropped"), 13u);
  EXPECT_EQ(c.value("objects_rehomed"), 4u);
  EXPECT_EQ(c.value("wasted_charged_work"), 123u);
  EXPECT_EQ(c.value("detection_latency_us"), 25000u);
}

}  // namespace
}  // namespace jade
