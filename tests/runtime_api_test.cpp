// API-surface tests for the Runtime front end: typed allocation and host
// I/O, stats reporting, machine introspection, and trace logging.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/log.hpp"

namespace jade {
namespace {

TEST(RuntimeApi, TypedAllocationRoundTripsAllScalars) {
  Runtime rt;
  auto check = [&](auto value, std::size_t count) {
    using T = decltype(value);
    std::vector<T> data(count);
    for (std::size_t i = 0; i < count; ++i)
      data[i] = static_cast<T>(value + static_cast<T>(i));
    auto ref = rt.alloc_init<T>(data);
    EXPECT_EQ(ref.count(), count);
    EXPECT_EQ(ref.byte_size(), count * sizeof(T));
    EXPECT_EQ(rt.get(ref), data);
  };
  check(std::int8_t{1}, 5);
  check(std::uint16_t{1000}, 9);
  check(std::int32_t{-7}, 3);
  check(std::uint64_t{1} << 40, 4);
  check(2.5f, 6);
  check(3.25, 8);
}

TEST(RuntimeApi, ObjectInfoCarriesNameAndType) {
  Runtime rt;
  auto v = rt.alloc<double>(12, "velocity");
  const ObjectInfo& info = rt.engine().object_info(v.id());
  EXPECT_EQ(info.name, "velocity");
  EXPECT_EQ(info.byte_size(), 96u);
  EXPECT_FALSE(info.type.order_invariant());
  auto anon = rt.alloc<int>(1);
  EXPECT_NE(rt.engine().object_info(anon.id()).name, "");  // auto-named
}

TEST(RuntimeApi, ZeroInitializedAllocation) {
  Runtime rt;
  auto v = rt.alloc<std::int64_t>(16);
  for (auto x : rt.get(v)) EXPECT_EQ(x, 0);
}

TEST(RuntimeApi, StatsCountTasksPerEngine) {
  for (EngineKind kind :
       {EngineKind::kSerial, EngineKind::kThread, EngineKind::kSim}) {
    RuntimeConfig cfg;
    cfg.engine = kind;
    if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(2);
    Runtime rt(std::move(cfg));
    auto v = rt.alloc<int>(1);
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 5; ++i)
        ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                     [v](TaskContext& t) { t.commute(v)[0] += 1; });
    });
    EXPECT_EQ(rt.stats().tasks_created, 5u);
    if (kind == EngineKind::kSim) {
      EXPECT_GT(rt.sim_duration(), 0.0);
    } else {
      EXPECT_EQ(rt.sim_duration(), 0.0);
    }
  }
}

TEST(RuntimeApi, MachineIntrospectionInsideTasks) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(5);
  Runtime rt(std::move(cfg));
  auto v = rt.alloc<int>(1);
  int machines_seen = -1;
  MachineId where = -1;
  rt.run([&](TaskContext& ctx) {
    EXPECT_EQ(ctx.machine(), 0);  // the original task runs on machine 0
    ctx.withonly_on(3, [&](AccessDecl& d) { d.rd_wr(v); },
                    [&, v](TaskContext& t) {
                      machines_seen = t.machine_count();
                      where = t.machine();
                      t.read_write(v)[0] = 1;
                    });
  });
  EXPECT_EQ(machines_seen, 5);
  EXPECT_EQ(where, 3);
}

TEST(RuntimeApi, TraceSinkReceivesSimEvents) {
  std::vector<std::string> lines;
  Log::set_level(LogLevel::kTrace);
  Log::set_sink([&](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(2);
  Runtime rt(std::move(cfg));
  auto v = rt.alloc<double>(64, "v", 1);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly_on(0, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v](TaskContext& t) { t.read_write(v)[0] = 1; });
  });

  Log::set_level(LogLevel::kOff);
  Log::set_sink(nullptr);

  bool saw_dispatch = false, saw_move = false, saw_complete = false;
  for (const auto& l : lines) {
    if (l.find("dispatch") != std::string::npos) saw_dispatch = true;
    if (l.find("move v") != std::string::npos) saw_move = true;
    if (l.find("complete") != std::string::npos) saw_complete = true;
  }
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_move);  // v lived on machine 1, task pinned to machine 0
  EXPECT_TRUE(saw_complete);
}

TEST(RuntimeApi, TaskNamesAppearInAccessErrors) {
  Runtime rt;
  auto v = rt.alloc<double>(1, "v");
  try {
    rt.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.rd(v); },
                   [v](TaskContext& t) { t.write(v)[0] = 1; },
                   "scaler");
    });
    FAIL() << "expected UndeclaredAccessError";
  } catch (const UndeclaredAccessError& e) {
    EXPECT_NE(std::string(e.what()).find("scaler"), std::string::npos);
  }
}

TEST(RuntimeApi, ConfigAccessors) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 3;
  Runtime rt(std::move(cfg));
  EXPECT_EQ(rt.machine_count(), 3);
  EXPECT_EQ(rt.config().engine, EngineKind::kThread);
}

}  // namespace
}  // namespace jade
