// Extended determinism property tests: random programs that exercise the
// full construct set — deferred rights with with-cont conversion and early
// retirement, commuting updates, write-only tasks, and nested hierarchies —
// must produce identical shared memory on every engine and platform.
//
// Commuting updates use integer addition (truly commutative/associative),
// so reordering among commuters cannot change the final state; everything
// else is order-sensitive by construction, so any serialization bug flips
// the result.
#include <gtest/gtest.h>

#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"

namespace jade {
namespace {

std::uint64_t mix(std::uint64_t acc, std::uint64_t v) {
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc * 0x2545f4914f6cdd1dULL + 1;
}

enum class Kind : int {
  kNormal = 0,
  kWriteOnly,
  kCommute,
  kDeferredConsumer,
  kParent,
};

struct TaskSpec {
  Kind kind;
  int target;
  std::vector<int> aux;  ///< reads (normal/parent) or deferred set (consumer)
  std::uint64_t salt;
  int children;  ///< parent kind only
};

struct Program {
  int objects;
  std::vector<TaskSpec> tasks;
};

Program generate(std::uint64_t seed, int objects, int count) {
  Rng rng(seed);
  Program p;
  p.objects = objects;
  for (int i = 0; i < count; ++i) {
    TaskSpec t;
    t.kind = static_cast<Kind>(rng.next_below(5));
    t.target = static_cast<int>(rng.next_below(objects));
    t.salt = rng.next_u64() | 1;
    t.children = 1 + static_cast<int>(rng.next_below(3));
    const int aux_count = 1 + static_cast<int>(rng.next_below(3));
    for (int a = 0; a < aux_count; ++a) {
      const int obj = static_cast<int>(rng.next_below(objects));
      const bool duplicate =
          std::find(t.aux.begin(), t.aux.end(), obj) != t.aux.end();
      if (obj != t.target && !duplicate) t.aux.push_back(obj);
    }
    p.tasks.push_back(std::move(t));
  }
  return p;
}

void emit_task(TaskContext& ctx, const TaskSpec& ts,
               const std::vector<SharedRef<std::uint64_t>>& objs) {
  const auto target = objs[static_cast<std::size_t>(ts.target)];
  switch (ts.kind) {
    case Kind::kNormal:
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(target);
            for (int r : ts.aux) d.rd(objs[static_cast<std::size_t>(r)]);
          },
          [&objs, ts, target](TaskContext& t) {
            std::uint64_t acc = ts.salt;
            for (int r : ts.aux)
              acc = mix(acc, t.read(objs[static_cast<std::size_t>(r)])[0]);
            auto h = t.read_write(target);
            h[0] = mix(h[0], acc);
          });
      break;
    case Kind::kWriteOnly:
      // wr-only right: stores allowed, loads not required.
      ctx.withonly([&](AccessDecl& d) { d.wr(target); },
                   [target, salt = ts.salt](TaskContext& t) {
                     auto h = t.write(target);
                     h[0] = salt;
                     h[1] = salt >> 7;
                   });
      break;
    case Kind::kCommute:
      ctx.withonly([&](AccessDecl& d) { d.cm(target); },
                   [target, salt = ts.salt](TaskContext& t) {
                     t.commute(target)[1] += salt;  // commutative update
                   });
      break;
    case Kind::kDeferredConsumer:
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(target);
            for (int r : ts.aux) d.df_rd(objs[static_cast<std::size_t>(r)]);
          },
          [&objs, ts, target](TaskContext& t) {
            std::uint64_t acc = ts.salt;
            for (int r : ts.aux) {
              const auto obj = objs[static_cast<std::size_t>(r)];
              t.with_cont([&](AccessDecl& d) { d.rd(obj); });
              acc = mix(acc, t.read(obj)[0]);
              t.with_cont([&](AccessDecl& d) { d.no_rd(obj); });
            }
            auto h = t.read_write(target);
            h[0] = mix(h[0], acc);
          });
      break;
    case Kind::kParent:
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(target);
            for (int r : ts.aux) d.rd(objs[static_cast<std::size_t>(r)]);
          },
          [&objs, ts, target](TaskContext& t) {
            {
              auto h = t.read_write(target);
              h[0] = mix(h[0], ts.salt);
            }
            for (int c = 0; c < ts.children; ++c) {
              const std::uint64_t child_salt = ts.salt * (2 * c + 3);
              // Children alternate: rd_wr on the parent's target, or rd on
              // one of the parent's aux objects mixed into the target.
              if (c % 2 == 0 || ts.aux.empty()) {
                t.withonly([&](AccessDecl& d) { d.rd_wr(target); },
                           [target, child_salt](TaskContext& ct) {
                             auto h = ct.read_write(target);
                             h[0] = mix(h[0], child_salt);
                           });
              } else {
                const auto aux =
                    objs[static_cast<std::size_t>(ts.aux[0])];
                t.withonly(
                    [&](AccessDecl& d) {
                      d.rd(aux);
                      d.rd_wr(target);
                    },
                    [aux, target, child_salt](TaskContext& ct) {
                      auto h = ct.read_write(target);
                      h[0] = mix(h[0], child_salt ^ ct.read(aux)[0]);
                    });
              }
            }
            // Reacquire after the children: must observe their effects.
            auto h = t.read_write(target);
            h[0] = mix(h[0], 0x5eedULL);
          });
      break;
  }
}

std::vector<std::uint64_t> run_program(const Program& p, RuntimeConfig cfg) {
  Runtime rt(std::move(cfg));
  std::vector<SharedRef<std::uint64_t>> objs;
  for (int i = 0; i < p.objects; ++i)
    objs.push_back(rt.alloc<std::uint64_t>(2, "o" + std::to_string(i)));
  rt.run([&](TaskContext& ctx) {
    for (const auto& ts : p.tasks) emit_task(ctx, ts, objs);
  });
  std::vector<std::uint64_t> out;
  for (auto& o : objs) {
    auto v = rt.get(o);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

RuntimeConfig serial_cfg() { return RuntimeConfig{}; }

RuntimeConfig thread_cfg(int threads, bool throttle = false) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = threads;
  if (throttle) {
    cfg.sched.throttle.enabled = true;
    cfg.sched.throttle.high_water = 5;
    cfg.sched.throttle.low_water = 2;
  }
  return cfg;
}

RuntimeConfig sim_cfg(ClusterConfig cluster, SchedPolicy sched = {}) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = std::move(cluster);
  cfg.sched = sched;
  return cfg;
}

class DeterminismExtTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismExtTest, AllEnginesMatchSerial) {
  const auto p = generate(GetParam(), 7, 70);
  const auto serial = run_program(p, serial_cfg());
  for (int threads : {1, 3, 8})
    EXPECT_EQ(run_program(p, thread_cfg(threads)), serial)
        << "threads=" << threads;
  EXPECT_EQ(run_program(p, thread_cfg(4, /*throttle=*/true)), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::dash(4))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::mica(4))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::ipsc860(8))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::hetero_workstations(3))),
            serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::hrv(3))), serial);
}

TEST_P(DeterminismExtTest, SchedulingPoliciesIrrelevantToResult) {
  const auto p = generate(GetParam() ^ 0xfeedULL, 5, 50);
  const auto serial = run_program(p, serial_cfg());
  for (int contexts : {1, 3}) {
    for (bool locality : {false, true}) {
      SchedPolicy sched;
      sched.contexts_per_machine = contexts;
      sched.locality = locality;
      EXPECT_EQ(run_program(p, sim_cfg(presets::mica(3), sched)), serial)
          << "contexts=" << contexts << " locality=" << locality;
    }
  }
  SchedPolicy throttled;
  throttled.throttle.enabled = true;
  throttled.throttle.high_water = 4;
  throttled.throttle.low_water = 2;
  EXPECT_EQ(run_program(p, sim_cfg(presets::ipsc860(4), throttled)), serial);
}

TEST_P(DeterminismExtTest, RepeatedRunsIdenticalIncludingVirtualTime) {
  const auto p = generate(GetParam() * 31 + 7, 6, 40);
  auto once = [&] {
    Runtime rt(sim_cfg(presets::hetero_workstations(4)));
    std::vector<SharedRef<std::uint64_t>> objs;
    for (int i = 0; i < p.objects; ++i)
      objs.push_back(rt.alloc<std::uint64_t>(2));
    rt.run([&](TaskContext& ctx) {
      for (const auto& ts : p.tasks) emit_task(ctx, ts, objs);
    });
    return std::pair{rt.sim_duration(), rt.stats().bytes_sent};
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismExtTest,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                           0xabcdefull));

}  // namespace
}  // namespace jade
