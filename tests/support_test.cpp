// Unit tests for the support module: intrusive list, RNG, stats, errors,
// work-stealing deque, parker.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "jade/support/error.hpp"
#include "jade/support/intrusive_list.hpp"
#include "jade/support/parker.hpp"
#include "jade/support/rng.hpp"
#include "jade/support/stats.hpp"
#include "jade/support/work_steal_deque.hpp"

namespace jade {
namespace {

struct Node : IntrusiveNode {
  explicit Node(int v) : value(v) {}
  int value;
};

std::vector<int> values(IntrusiveList<Node>& list) {
  std::vector<int> out;
  list.for_each([&](Node* n) { out.push_back(n->value); });
  return out;
}

TEST(IntrusiveList, StartsEmpty) {
  IntrusiveList<Node> list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
}

TEST(IntrusiveList, PushBackPreservesOrder) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(list.front()->value, 1);
  EXPECT_EQ(list.back()->value, 3);
}

TEST(IntrusiveList, PushFront) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.push_front(&a);
  list.push_front(&b);
  EXPECT_EQ(values(list), (std::vector<int>{2, 1}));
}

TEST(IntrusiveList, InsertBefore) {
  IntrusiveList<Node> list;
  Node a(1), b(3);
  list.push_back(&a);
  list.push_back(&b);
  Node mid(2);
  list.insert_before(&b, &mid);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2, 3}));
  Node first(0);
  list.insert_before(&a, &first);
  EXPECT_EQ(values(list), (std::vector<int>{0, 1, 2, 3}));
}

TEST(IntrusiveList, UnlinkMiddleFrontBack) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  IntrusiveList<Node>::unlink(&b);
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
  EXPECT_FALSE(b.linked());
  IntrusiveList<Node>::unlink(&a);
  EXPECT_EQ(values(list), (std::vector<int>{3}));
  IntrusiveList<Node>::unlink(&c);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, NextPrevNavigation) {
  IntrusiveList<Node> list;
  Node a(1), b(2);
  list.push_back(&a);
  list.push_back(&b);
  EXPECT_EQ(list.next_of(&a), &b);
  EXPECT_EQ(list.next_of(&b), nullptr);
  EXPECT_EQ(list.prev_of(&b), &a);
  EXPECT_EQ(list.prev_of(&a), nullptr);
}

TEST(IntrusiveList, ForEachMayUnlinkCurrent) {
  IntrusiveList<Node> list;
  Node a(1), b(2), c(3);
  list.push_back(&a);
  list.push_back(&b);
  list.push_back(&c);
  list.for_each([&](Node* n) {
    if (n->value == 2) IntrusiveList<Node>::unlink(n);
  });
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
}

TEST(IntrusiveList, ReinsertAfterUnlink) {
  IntrusiveList<Node> list;
  Node a(1);
  list.push_back(&a);
  IntrusiveList<Node>::unlink(&a);
  list.push_back(&a);
  EXPECT_EQ(list.size(), 1u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.next_normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(TextTable, AlignedOutput) {
  TextTable t({"name", "value"});
  t.add_row(std::vector<std::string>{"alpha", "1"});
  t.add_row(std::vector<double>{2.5, 10.125}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.12"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchIsInternalError) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row(std::vector<std::string>{"only-one"}),
               InternalError);
}

TEST(Errors, HierarchyPreserved) {
  try {
    throw UndeclaredAccessError("boom");
  } catch (const JadeError& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_THROW(
      { JADE_ASSERT_MSG(false, "invariant"); }, InternalError);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(1.5, 3), "1.500");
  EXPECT_EQ(format_double(-0.25, 2), "-0.25");
}

TEST(WorkStealDeque, OwnerPopsLifoThievesStealFifo) {
  WorkStealDeque<int> d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.size_estimate(), 3u);
  auto oldest = d.steal();
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(*oldest, 1);
  auto newest = d.pop();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(*newest, 3);
  EXPECT_EQ(*d.pop(), 2);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WorkStealDeque, GrowsPastInitialCapacityPreservingOrder) {
  WorkStealDeque<int> d(4);
  constexpr int kItems = 100;
  for (int i = 0; i < kItems; ++i) d.push(i);
  EXPECT_EQ(d.size_estimate(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems / 2; ++i) EXPECT_EQ(*d.steal(), i);
  for (int i = kItems - 1; i >= kItems / 2; --i) EXPECT_EQ(*d.pop(), i);
  EXPECT_TRUE(d.empty());
}

TEST(WorkStealDeque, ConcurrentThievesReceiveEachItemExactlyOnce) {
  // Owner pushes (and sometimes pops) while thieves steal; every item must
  // be delivered to exactly one taker.  Exactly-once shows up as both the
  // count and the sum matching; a double delivery would overshoot, a lost
  // item can only hang (bounded by the gtest harness, not a timer here).
  WorkStealDeque<int> d;
  constexpr int kItems = 20000;
  constexpr int kThieves = 2;
  std::atomic<bool> go{false};
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (taken.load(std::memory_order_acquire) < kItems) {
        if (std::optional<int> v = d.steal()) {
          sum.fetch_add(*v, std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (int i = 1; i <= kItems; ++i) {
    d.push(i);
    if (i % 3 == 0) {
      if (std::optional<int> v = d.pop()) {
        sum.fetch_add(*v, std::memory_order_relaxed);
        taken.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  while (taken.load(std::memory_order_acquire) < kItems) {
    if (std::optional<int> v = d.pop()) {
      sum.fetch_add(*v, std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : thieves) t.join();
  EXPECT_EQ(taken.load(), kItems);
  EXPECT_EQ(sum.load(),
            static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(Parker, UnparkBeforeParkSatisfiesIt) {
  Parker p;
  p.unpark();
  p.park();  // consumes the banked token without blocking
}

TEST(Parker, TokensDoNotAccumulate) {
  Parker p;
  p.unpark();
  p.unpark();
  p.unpark();
  p.park();  // three unparks banked exactly one token
  std::atomic<bool> woke{false};
  std::thread t([&] {
    p.park();
    woke.store(true, std::memory_order_release);
  });
  // No token is available, so the thread cannot have returned from park()
  // regardless of scheduling; only the unpark below releases it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  p.unpark();
  t.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace jade
