// Tests for the scheduling selection heuristics (Section 5 optimizations).
#include <gtest/gtest.h>

#include "jade/sched/policies.hpp"

namespace jade {
namespace {

ObjectInfo make_info(ObjectId id, std::size_t doubles) {
  return ObjectInfo{id, TypeDescriptor::array_of<double>(doubles),
                    "o" + std::to_string(id)};
}

class PolicyTest : public ::testing::Test {
 protected:
  PolicyTest() : dir(3) {
    dir.add_object(make_info(1, 100), 0);  // 800 B on machine 0
    dir.add_object(make_info(2, 10), 1);   // 80 B on machine 1
    dir.add_object(make_info(3, 1), 2);    // 8 B on machine 2
  }
  ObjectDirectory dir;
};

TEST_F(PolicyTest, LocalityPrefersMachineHoldingBytes) {
  const ObjectId objs[] = {1};
  const int free[] = {1, 1, 1};
  EXPECT_EQ(pick_machine_for_task(dir, objs, free, /*locality=*/true,
                                  /*creator=*/2),
            0);
}

TEST_F(PolicyTest, BusyMachinesAreSkipped) {
  const ObjectId objs[] = {1};
  const int free[] = {0, 1, 1};  // machine 0 full despite locality
  const MachineId m = pick_machine_for_task(dir, objs, free, true, 2);
  EXPECT_NE(m, 0);
  EXPECT_NE(m, -1);
}

TEST_F(PolicyTest, NoFreeMachineReturnsMinusOne) {
  const ObjectId objs[] = {1};
  const int free[] = {0, 0, 0};
  EXPECT_EQ(pick_machine_for_task(dir, objs, free, true, 0), -1);
}

TEST_F(PolicyTest, TieBreaksPreferCreator) {
  const ObjectId objs[] = {3};  // resident on machine 2 only
  const int free[] = {1, 1, 0};
  // Machines 0 and 1 both hold 0 bytes; the creator (1) wins the tie.
  EXPECT_EQ(pick_machine_for_task(dir, objs, free, true, 1), 1);
}

TEST_F(PolicyTest, LocalityOffBalancesByFreeContexts) {
  const ObjectId objs[] = {1};
  const int free[] = {1, 3, 2};
  EXPECT_EQ(pick_machine_for_task(dir, objs, free, /*locality=*/false, 0),
            1);
}

TEST_F(PolicyTest, LocalityBeatsCreatorPreference) {
  const ObjectId objs[] = {2};  // on machine 1
  const int free[] = {1, 1, 1};
  EXPECT_EQ(pick_machine_for_task(dir, objs, free, true, /*creator=*/0), 1);
}

TEST_F(PolicyTest, PickTaskPrefersResidentBytes) {
  std::vector<std::vector<ObjectId>> lists = {{3}, {1}, {2}};
  EXPECT_EQ(pick_task_for_machine(dir, lists, /*machine=*/0, true), 1u);
  EXPECT_EQ(pick_task_for_machine(dir, lists, /*machine=*/1, true), 2u);
}

TEST_F(PolicyTest, PickTaskFifoWhenLocalityOff) {
  std::vector<std::vector<ObjectId>> lists = {{3}, {1}};
  EXPECT_EQ(pick_task_for_machine(dir, lists, 0, false), 0u);
}

TEST_F(PolicyTest, PickTaskFifoOnTies) {
  std::vector<std::vector<ObjectId>> lists = {{2}, {2}};
  EXPECT_EQ(pick_task_for_machine(dir, lists, 1, true), 0u);
}

TEST_F(PolicyTest, EmptyReadyListReturnsSentinel) {
  std::vector<std::vector<ObjectId>> lists;
  EXPECT_EQ(pick_task_for_machine(dir, lists, 0, true),
            std::numeric_limits<std::size_t>::max());
}

TEST(ThrottleConfigTest, Defaults) {
  ThrottleConfig t;
  EXPECT_FALSE(t.enabled);
  EXPECT_GT(t.high_water, t.low_water);
}

}  // namespace
}  // namespace jade
