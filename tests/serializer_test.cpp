// White-box tests of the serializer — Jade's core semantics: per-object
// declaration queues, enabledness, deferred rights, with-cont updates,
// hierarchy enforcement and access checking (paper Sections 2-4).
#include <gtest/gtest.h>

#include <vector>

#include "jade/core/access.hpp"
#include "jade/core/queues.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

using access::kCommute;
using access::kRead;
using access::kWrite;

class RecordingListener : public SerializerListener {
 public:
  void on_task_ready(TaskNode* task) override { ready.push_back(task); }
  void on_task_unblocked(TaskNode* task) override {
    unblocked.push_back(task);
  }

  bool was_readied(TaskNode* t) const {
    return std::find(ready.begin(), ready.end(), t) != ready.end();
  }
  bool was_unblocked(TaskNode* t) const {
    return std::find(unblocked.begin(), unblocked.end(), t) != unblocked.end();
  }

  std::vector<TaskNode*> ready;
  std::vector<TaskNode*> unblocked;
};

/// Builds AccessRequest lists the way TaskContext::withonly does.
std::vector<AccessRequest> spec(
    const std::function<void(AccessDecl&)>& fn) {
  AccessDecl d;
  fn(d);
  return d.requests();
}

ObjectRef obj(ObjectId id) {
  // ObjectRef's constructor is private to Runtime; reconstruct through the
  // SharedRef layout via a small helper class.
  struct Raw : ObjectRef {
    explicit Raw(ObjectId i) { id_ = i; }
  };
  return Raw(id);
}

class SerializerTest : public ::testing::Test {
 protected:
  SerializerTest() : ser(&listener) {}

  TaskNode* make(TaskNode* parent,
                 const std::function<void(AccessDecl&)>& fn,
                 std::string name = "") {
    return ser.create_task(parent, spec(fn), nullptr, std::move(name));
  }
  TaskNode* make_root_child(const std::function<void(AccessDecl&)>& fn,
                            std::string name = "") {
    return make(ser.root(), fn, std::move(name));
  }

  RecordingListener listener;
  Serializer ser;
  ObjectRef A = obj(1);
  ObjectRef B = obj(2);
};

TEST_F(SerializerTest, ConcurrentReadersAreBothReady) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  EXPECT_EQ(t1->state(), TaskState::kReady);
  EXPECT_EQ(t2->state(), TaskState::kReady);
}

TEST_F(SerializerTest, WritersSerializeInCreationOrder) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.wr(A); });
  EXPECT_EQ(t1->state(), TaskState::kReady);
  EXPECT_EQ(t2->state(), TaskState::kPending);
  ser.task_started(t1);
  ser.complete_task(t1);
  EXPECT_EQ(t2->state(), TaskState::kReady);
  EXPECT_TRUE(listener.was_readied(t2));
}

TEST_F(SerializerTest, ReadWaitsForEarlierWriter) {
  TaskNode* w = make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  TaskNode* r = make_root_child([&](AccessDecl& d) { d.rd(A); });
  EXPECT_EQ(r->state(), TaskState::kPending);
  ser.task_started(w);
  ser.complete_task(w);
  EXPECT_EQ(r->state(), TaskState::kReady);
}

TEST_F(SerializerTest, WriteWaitsForAllEarlierReaders) {
  TaskNode* r1 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  TaskNode* r2 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  TaskNode* w = make_root_child([&](AccessDecl& d) { d.wr(A); });
  EXPECT_EQ(w->state(), TaskState::kPending);
  ser.task_started(r1);
  ser.complete_task(r1);
  EXPECT_EQ(w->state(), TaskState::kPending);
  ser.task_started(r2);
  ser.complete_task(r2);
  EXPECT_EQ(w->state(), TaskState::kReady);
}

TEST_F(SerializerTest, DisjointObjectsRunConcurrently) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.rd_wr(B); });
  EXPECT_EQ(t1->state(), TaskState::kReady);
  EXPECT_EQ(t2->state(), TaskState::kReady);
}

TEST_F(SerializerTest, TaskWaitsOnAllConflictingObjects) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.wr(B); });
  TaskNode* t3 = make_root_child([&](AccessDecl& d) {
    d.rd(A);
    d.rd(B);
  });
  EXPECT_EQ(t3->state(), TaskState::kPending);
  ser.task_started(t1);
  ser.complete_task(t1);
  EXPECT_EQ(t3->state(), TaskState::kPending);  // still waiting on B
  ser.task_started(t2);
  ser.complete_task(t2);
  EXPECT_EQ(t3->state(), TaskState::kReady);
}

TEST_F(SerializerTest, DeferredRightDoesNotGateStart) {
  TaskNode* w = make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.df_rd(A); });
  EXPECT_EQ(w->state(), TaskState::kReady);
  // The deferred reader starts immediately — the pipelining property of
  // Section 4.2.
  EXPECT_EQ(t->state(), TaskState::kReady);
}

TEST_F(SerializerTest, DeferredRightBlocksSuccessors) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.df_wr(A); });
  TaskNode* r = make_root_child([&](AccessDecl& d) { d.rd(A); });
  // The earlier task may still convert df_wr to wr, so the reader must wait.
  EXPECT_EQ(r->state(), TaskState::kPending);
  ser.task_started(t);
  ser.complete_task(t);
  EXPECT_EQ(r->state(), TaskState::kReady);
}

TEST_F(SerializerTest, ConversionBlocksUntilWriterFinishes) {
  TaskNode* w = make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.df_rd(A); });
  ser.task_started(w);
  ser.task_started(t);
  const bool must_block =
      ser.update_spec(t, spec([&](AccessDecl& d) { d.rd(A); }));
  EXPECT_TRUE(must_block);
  EXPECT_FALSE(listener.was_unblocked(t));
  ser.complete_task(w);
  EXPECT_TRUE(listener.was_unblocked(t));
  // After unblocking the task may acquire.
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead));
}

TEST_F(SerializerTest, ConversionProceedsWhenAlreadyEnabled) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.df_rd(A); });
  ser.task_started(t);
  EXPECT_FALSE(ser.update_spec(t, spec([&](AccessDecl& d) { d.rd(A); })));
}

TEST_F(SerializerTest, NoWrReleasesSuccessorsEarly) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t1);
  EXPECT_EQ(t2->state(), TaskState::kPending);
  // t1 finished writing A but keeps running (Section 4.2's no_rd/no_wr).
  EXPECT_FALSE(ser.update_spec(t1, spec([&](AccessDecl& d) {
    d.no_wr(A);
  })));
  EXPECT_EQ(t2->state(), TaskState::kReady);  // read-read no longer conflicts
  EXPECT_EQ(t1->state(), TaskState::kRunning);
}

TEST_F(SerializerTest, FullRetirementUnlinksRecord) {
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.wr(A); });
  ser.task_started(t1);
  ser.update_spec(t1, spec([&](AccessDecl& d) {
    d.no_rd(A);
    d.no_wr(A);
  }));
  EXPECT_EQ(t2->state(), TaskState::kReady);
  // The record is gone; touching A now is an undeclared access.
  EXPECT_THROW(ser.acquire(t1, A.id(), kRead), UndeclaredAccessError);
}

TEST_F(SerializerTest, WithContCannotAddNewObjects) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t);
  EXPECT_THROW(ser.update_spec(t, spec([&](AccessDecl& d) { d.rd(B); })),
               SpecUpdateError);
}

TEST_F(SerializerTest, WithContCannotEscalateRights) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t);
  EXPECT_THROW(ser.update_spec(t, spec([&](AccessDecl& d) { d.wr(A); })),
               SpecUpdateError);
}

TEST_F(SerializerTest, RedundantConversionIsNoop) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t);
  EXPECT_FALSE(ser.update_spec(t, spec([&](AccessDecl& d) { d.rd(A); })));
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead));
}

TEST_F(SerializerTest, AcquireChecksDeclaredMode) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t);
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead));
  EXPECT_THROW(ser.acquire(t, A.id(), kWrite), UndeclaredAccessError);
  EXPECT_THROW(ser.acquire(t, B.id(), kRead), UndeclaredAccessError);
}

TEST_F(SerializerTest, AcquireOfDeferredRightExplains) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.df_rd(A); });
  ser.task_started(t);
  try {
    ser.acquire(t, A.id(), kRead);
    FAIL() << "expected UndeclaredAccessError";
  } catch (const UndeclaredAccessError& e) {
    EXPECT_NE(std::string(e.what()).find("deferred"), std::string::npos);
  }
}

TEST_F(SerializerTest, ParentBlocksOnOwnChildsConflict) {
  TaskNode* p = make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  ser.task_started(p);
  TaskNode* c = make(p, [&](AccessDecl& d) { d.wr(A); });
  EXPECT_EQ(c->state(), TaskState::kReady);
  // Parent re-acquiring A must wait for its own child (serial order: the
  // child's write happens at its creation point, before the parent's later
  // accesses).
  EXPECT_TRUE(ser.acquire(p, A.id(), kRead));
  ser.task_started(c);
  ser.complete_task(c);
  EXPECT_TRUE(listener.was_unblocked(p));
}

TEST_F(SerializerTest, ParentReadChildReadNoBlock) {
  TaskNode* p = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(p);
  make(p, [&](AccessDecl& d) { d.rd(A); });
  EXPECT_FALSE(ser.acquire(p, A.id(), kRead));
}

TEST_F(SerializerTest, HierarchyViolationDetected) {
  TaskNode* p = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(p);
  EXPECT_THROW(make(p, [&](AccessDecl& d) { d.wr(A); }),
               HierarchyViolationError);
  EXPECT_THROW(make(p, [&](AccessDecl& d) { d.rd(B); }),
               HierarchyViolationError);
}

TEST_F(SerializerTest, DeferredParentRightCoversChild) {
  TaskNode* p = make_root_child([&](AccessDecl& d) { d.df_wr(A); });
  ser.task_started(p);
  TaskNode* c = make(p, [&](AccessDecl& d) { d.wr(A); });
  EXPECT_EQ(c->state(), TaskState::kReady);
}

TEST_F(SerializerTest, ChildrenOrderBeforeParentAndLaterSiblings) {
  TaskNode* p = make_root_child([&](AccessDecl& d) { d.rd_wr(A); }, "p");
  TaskNode* later = make_root_child([&](AccessDecl& d) { d.rd(A); }, "later");
  ser.task_started(p);
  TaskNode* c1 = make(p, [&](AccessDecl& d) { d.rd_wr(A); }, "c1");
  TaskNode* c2 = make(p, [&](AccessDecl& d) { d.rd_wr(A); }, "c2");

  // Serial order in A's queue: c1, c2, p, later.
  auto snap = ser.queue_snapshot(A.id());
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].first, c1->id());
  EXPECT_EQ(snap[1].first, c2->id());
  EXPECT_EQ(snap[2].first, p->id());
  EXPECT_EQ(snap[3].first, later->id());

  EXPECT_EQ(c1->state(), TaskState::kReady);
  EXPECT_EQ(c2->state(), TaskState::kPending);
  EXPECT_EQ(later->state(), TaskState::kPending);

  ser.task_started(c1);
  ser.complete_task(c1);
  EXPECT_EQ(c2->state(), TaskState::kReady);
  EXPECT_EQ(later->state(), TaskState::kPending);  // p still holds rd_wr

  ser.task_started(c2);
  ser.complete_task(c2);
  ser.complete_task(p);
  EXPECT_EQ(later->state(), TaskState::kReady);
}

TEST_F(SerializerTest, CommutersShareButExcludeReaders) {
  TaskNode* c1 = make_root_child([&](AccessDecl& d) { d.cm(A); });
  TaskNode* c2 = make_root_child([&](AccessDecl& d) { d.cm(A); });
  TaskNode* r = make_root_child([&](AccessDecl& d) { d.rd(A); });
  EXPECT_EQ(c1->state(), TaskState::kReady);
  EXPECT_EQ(c2->state(), TaskState::kReady);
  EXPECT_EQ(r->state(), TaskState::kPending);
  ser.task_started(c1);
  ser.complete_task(c1);
  EXPECT_EQ(r->state(), TaskState::kPending);
  ser.task_started(c2);
  ser.complete_task(c2);
  EXPECT_EQ(r->state(), TaskState::kReady);
}

TEST_F(SerializerTest, CommuterWaitsForEarlierWriter) {
  TaskNode* w = make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* c = make_root_child([&](AccessDecl& d) { d.cm(A); });
  EXPECT_EQ(c->state(), TaskState::kPending);
  ser.task_started(w);
  ser.complete_task(w);
  EXPECT_EQ(c->state(), TaskState::kReady);
}

TEST_F(SerializerTest, NoStatementsInWithonlyRejected) {
  EXPECT_THROW(make_root_child([&](AccessDecl& d) { d.no_rd(A); }),
               SpecUpdateError);
}

TEST_F(SerializerTest, OutstandingCountsLifecycle) {
  EXPECT_EQ(ser.outstanding(), 0u);
  TaskNode* t1 = make_root_child([&](AccessDecl& d) { d.rd(A); });
  TaskNode* t2 = make_root_child([&](AccessDecl& d) { d.wr(B); });
  EXPECT_EQ(ser.outstanding(), 2u);
  ser.task_started(t1);
  ser.complete_task(t1);
  EXPECT_EQ(ser.outstanding(), 1u);
  ser.task_started(t2);
  ser.complete_task(t2);
  EXPECT_EQ(ser.outstanding(), 0u);
  EXPECT_EQ(ser.tasks_created(), 2u);
}

TEST_F(SerializerTest, RootAccessRules) {
  // Uncontested: anything goes.
  EXPECT_FALSE(ser.acquire(ser.root(), A.id(), kRead | kWrite));
  // Readers outstanding: root may read along (the object is immutable while
  // they live — Figure 6's driver reads r[j] this way) but not write.
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  EXPECT_FALSE(ser.acquire(ser.root(), A.id(), kRead));
  EXPECT_THROW(ser.acquire(ser.root(), A.id(), kWrite),
               UndeclaredAccessError);
  ser.task_started(t);
  ser.complete_task(t);
  EXPECT_FALSE(ser.acquire(ser.root(), A.id(), kRead | kWrite));
  // A writer outstanding blocks even root reads.
  make_root_child([&](AccessDecl& d) { d.rd_wr(A); });
  EXPECT_THROW(ser.acquire(ser.root(), A.id(), kRead),
               UndeclaredAccessError);
}

TEST_F(SerializerTest, TaskWithOnlyDeferredRecordsIsReadyInstantly) {
  make_root_child([&](AccessDecl& d) { d.wr(A); });
  TaskNode* t = make_root_child([&](AccessDecl& d) {
    d.df_rd(A);
    d.df_wr(B);
  });
  EXPECT_EQ(t->state(), TaskState::kReady);
  EXPECT_EQ(t->record_count(), 2u);
}

TEST_F(SerializerTest, DowngradeToDeferredAndReconvert) {
  TaskNode* t = make_root_child([&](AccessDecl& d) { d.rd(A); });
  ser.task_started(t);
  // Downgrade: release the immediate right but keep the queue position.
  ser.update_spec(t, spec([&](AccessDecl& d) { d.df_rd(A); }));
  EXPECT_THROW(ser.acquire(t, A.id(), kRead), UndeclaredAccessError);
  ser.update_spec(t, spec([&](AccessDecl& d) { d.rd(A); }));
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead));
}

TEST_F(SerializerTest, MergedStatementsCombine) {
  // rd(A); wr(A) in one declaration == rd_wr(A).
  TaskNode* t = make_root_child([&](AccessDecl& d) {
    d.rd(A);
    d.wr(A);
  });
  ser.task_started(t);
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead | kWrite));
  EXPECT_EQ(t->record_count(), 1u);
}

TEST_F(SerializerTest, ImmediateSupersedesDeferredInOneDecl) {
  TaskNode* t = make_root_child([&](AccessDecl& d) {
    d.df_rd(A);
    d.rd(A);
  });
  ser.task_started(t);
  EXPECT_FALSE(ser.acquire(t, A.id(), kRead));
}

TEST_F(SerializerTest, UnenforcedHierarchyAllowsEscalation) {
  RecordingListener l2;
  Serializer loose(&l2, /*enforce_hierarchy=*/false);
  TaskNode* p = loose.create_task(loose.root(),
                                  spec([&](AccessDecl& d) { d.rd(A); }),
                                  nullptr);
  loose.task_started(p);
  EXPECT_NO_THROW(
      loose.create_task(p, spec([&](AccessDecl& d) { d.wr(A); }), nullptr));
}

TEST_F(SerializerTest, ConflictMatrix) {
  EXPECT_FALSE(access::conflicts(kRead, kRead));
  EXPECT_TRUE(access::conflicts(kRead, kWrite));
  EXPECT_TRUE(access::conflicts(kWrite, kRead));
  EXPECT_TRUE(access::conflicts(kWrite, kWrite));
  EXPECT_FALSE(access::conflicts(kCommute, kCommute));
  EXPECT_TRUE(access::conflicts(kCommute, kRead));
  EXPECT_TRUE(access::conflicts(kRead, kCommute));
  EXPECT_TRUE(access::conflicts(kCommute, kWrite));
  EXPECT_TRUE(access::conflicts(kRead | kCommute, kCommute));
  EXPECT_FALSE(access::conflicts(0, kWrite));
  EXPECT_FALSE(access::conflicts(kWrite, 0));
}

}  // namespace
}  // namespace jade
