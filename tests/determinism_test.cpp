// Property-based determinism tests: random Jade programs generated from a
// seed must produce byte-identical shared memory on every engine, every
// platform, every worker count — the paper's central guarantee: "all
// parallel executions of a Jade program deterministically generate the same
// result as a serial execution of the program."
#include <gtest/gtest.h>

#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"

namespace jade {
namespace {

/// A randomly generated program: a flat list of task descriptions over a
/// fixed set of integer objects.  Each task reads some objects and
/// read-modify-writes one, with an order-sensitive mixing function, so any
/// ordering violation changes the final state.
struct ProgramSpec {
  struct TaskSpec {
    std::vector<int> reads;
    int target;
    std::uint64_t salt;
    int children;  ///< nested tasks on the same target
  };
  int objects;
  std::vector<TaskSpec> tasks;
};

ProgramSpec generate_program(std::uint64_t seed, int objects, int tasks) {
  Rng rng(seed);
  ProgramSpec p;
  p.objects = objects;
  for (int i = 0; i < tasks; ++i) {
    ProgramSpec::TaskSpec t;
    const int reads = static_cast<int>(rng.next_below(3));
    for (int r = 0; r < reads; ++r)
      t.reads.push_back(static_cast<int>(rng.next_below(objects)));
    t.target = static_cast<int>(rng.next_below(objects));
    t.salt = rng.next_u64() | 1;
    t.children = rng.next_bool(0.2) ? static_cast<int>(rng.next_below(3)) : 0;
    p.tasks.push_back(std::move(t));
  }
  return p;
}

std::uint64_t mix(std::uint64_t acc, std::uint64_t v) {
  acc ^= v + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc * 0x2545f4914f6cdd1dULL + 1;
}

std::vector<std::uint64_t> run_program(const ProgramSpec& p,
                                       RuntimeConfig cfg) {
  Runtime rt(std::move(cfg));
  std::vector<SharedRef<std::uint64_t>> objs;
  for (int i = 0; i < p.objects; ++i)
    objs.push_back(rt.alloc<std::uint64_t>(2, "o" + std::to_string(i)));
  rt.run([&](TaskContext& ctx) {
    for (const auto& ts : p.tasks) {
      ctx.withonly(
          [&](AccessDecl& d) {
            for (int r : ts.reads)
              if (r != ts.target) d.rd(objs[r]);
            d.rd_wr(objs[ts.target]);
          },
          [&objs, ts](TaskContext& t) {
            std::uint64_t acc = ts.salt;
            for (int r : ts.reads)
              if (r != ts.target) acc = mix(acc, t.read(objs[r])[0]);
            {
              auto h = t.read_write(objs[ts.target]);
              h[0] = mix(h[0], acc);
              h[1] += 1;  // task count per object
            }
            for (int c = 0; c < ts.children; ++c) {
              auto target = objs[ts.target];
              const std::uint64_t child_salt = ts.salt * (c + 2);
              t.withonly([&](AccessDecl& d) { d.rd_wr(target); },
                         [target, child_salt](TaskContext& ct) {
                           auto h = ct.read_write(target);
                           h[0] = mix(h[0], child_salt);
                         });
            }
            // Parent touches the target again AFTER creating children; the
            // serial order requires it to see their effects.
            auto h = t.read_write(objs[ts.target]);
            h[0] = mix(h[0], 0xabcdef);
          });
    }
  });
  std::vector<std::uint64_t> out;
  for (auto& o : objs) {
    auto v = rt.get(o);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

RuntimeConfig serial_cfg() { return RuntimeConfig{}; }

RuntimeConfig thread_cfg(int threads, bool throttle = false) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = threads;
  if (throttle) {
    cfg.sched.throttle.enabled = true;
    cfg.sched.throttle.high_water = 6;
    cfg.sched.throttle.low_water = 3;
  }
  return cfg;
}

RuntimeConfig sim_cfg(ClusterConfig cluster, int contexts = 2) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = std::move(cluster);
  cfg.sched.contexts_per_machine = contexts;
  return cfg;
}

class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismTest, ThreadEngineMatchesSerial) {
  const auto p = generate_program(GetParam(), 6, 60);
  const auto serial = run_program(p, serial_cfg());
  for (int threads : {1, 2, 4, 8})
    EXPECT_EQ(run_program(p, thread_cfg(threads)), serial)
        << "threads=" << threads << " seed=" << GetParam();
}

TEST_P(DeterminismTest, ThrottledThreadEngineMatchesSerial) {
  const auto p = generate_program(GetParam(), 5, 80);
  EXPECT_EQ(run_program(p, thread_cfg(4, /*throttle=*/true)),
            run_program(p, serial_cfg()));
}

TEST_P(DeterminismTest, SimEngineMatchesSerialOnAllPlatforms) {
  const auto p = generate_program(GetParam(), 6, 50);
  const auto serial = run_program(p, serial_cfg());
  EXPECT_EQ(run_program(p, sim_cfg(presets::dash(4))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::mica(3))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::ipsc860(4))), serial);
  EXPECT_EQ(run_program(p, sim_cfg(presets::hetero_workstations(4))), serial);
}

TEST_P(DeterminismTest, SimEngineContextCountIrrelevantToResult) {
  const auto p = generate_program(GetParam(), 4, 40);
  const auto serial = run_program(p, serial_cfg());
  for (int contexts : {1, 2, 4})
    EXPECT_EQ(run_program(p, sim_cfg(presets::ideal(3), contexts)), serial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull, 42ull,
                                           1234567ull, 0xdeadbeefull));

TEST(DeterminismPipeline, DeferredReadsMatchSerialAcrossEngines) {
  // Pipelined consumer over produced columns with random column sizes.
  auto build_and_run = [](RuntimeConfig cfg) {
    Rng rng(99);
    Runtime rt(std::move(cfg));
    constexpr int kCols = 10;
    std::vector<SharedRef<double>> cols;
    for (int i = 0; i < kCols; ++i)
      cols.push_back(
          rt.alloc<double>(1 + rng.next_below(16), "c" + std::to_string(i)));
    auto sum = rt.alloc<double>(1, "sum");
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < kCols; ++i) {
        auto c = cols[i];
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(c); },
                     [c, i](TaskContext& t) {
                       auto h = t.read_write(c);
                       for (std::size_t k = 0; k < h.size(); ++k)
                         h[k] = i + 0.5 * static_cast<double>(k);
                     });
      }
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(sum);
            for (auto& c : cols) d.df_rd(c);
          },
          [cols, sum](TaskContext& t) {
            for (auto& c : cols) {
              t.with_cont([&](AccessDecl& d) { d.rd(c); });
              auto h = t.read(c);
              double s = 0;
              for (double x : h) s += x;
              t.read_write(sum)[0] += s;
              t.with_cont([&](AccessDecl& d) { d.no_rd(c); });
            }
          });
    });
    return rt.get(sum)[0];
  };
  const double serial = build_and_run(serial_cfg());
  EXPECT_DOUBLE_EQ(build_and_run(thread_cfg(4)), serial);
  RuntimeConfig sc;
  sc.engine = EngineKind::kSim;
  sc.cluster = presets::mica(4);
  EXPECT_DOUBLE_EQ(build_and_run(std::move(sc)), serial);
}

}  // namespace
}  // namespace jade
