// ObjectDirectory at 1024+ machines — the ReplicaSet rework lifted the old
// 64-machine bitmask cap; these tests drive every directory operation with
// machine ids on both sides of the uint64 fast-path boundary.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "jade/store/directory.hpp"
#include "jade/store/replica_set.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

TypeDescriptor dummy_type(std::size_t doubles) {
  return TypeDescriptor::array_of<double>(doubles);
}

ObjectInfo make_info(ObjectId id, std::size_t doubles) {
  ObjectInfo info;
  info.id = id;
  info.type = dummy_type(doubles);
  info.name = "obj" + std::to_string(id);
  return info;
}

TEST(ReplicaSet, FastPathAndOverflowCoexist) {
  ReplicaSet s;
  EXPECT_TRUE(s.none());
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(1500);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(1500));
  EXPECT_FALSE(s.test(65));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.members(), (std::vector<MachineId>{0, 63, 64, 1500}));
  s.clear(63);
  s.clear(1500);
  EXPECT_EQ(s.members(), (std::vector<MachineId>{0, 64}));
  EXPECT_FALSE(s.sole(0));
  s.clear(64);
  EXPECT_TRUE(s.sole(0));
  s.reset();
  EXPECT_TRUE(s.none());
}

TEST(ReplicaSet, SoleAboveTheWordBoundary) {
  ReplicaSet s;
  s.set(1024);
  EXPECT_TRUE(s.sole(1024));
  EXPECT_FALSE(s.sole(1023));
  s.set(3);
  EXPECT_FALSE(s.sole(1024));
}

TEST(ReplicaSet, SetIsIdempotentEitherSide) {
  ReplicaSet s;
  s.set(5);
  s.set(5);
  s.set(500);
  s.set(500);
  EXPECT_EQ(s.count(), 2u);
}

TEST(DirectoryScale, AcceptsThousandsOfMachines) {
  ObjectDirectory dir(1536);
  EXPECT_EQ(dir.machine_count(), 1536);
  EXPECT_THROW(ObjectDirectory(kMaxMachines + 1), ConfigError);
}

TEST(DirectoryScale, ReplicationAndInvalidationAcrossTheBoundary) {
  ObjectDirectory dir(1100);
  dir.add_object(make_info(1, 16), /*home=*/1050);
  EXPECT_EQ(dir.owner(1), 1050);
  EXPECT_TRUE(dir.present(1, 1050));
  EXPECT_TRUE(dir.sole_holder(1, 1050));

  // Replicas on both sides of machine 64.
  for (MachineId m : {3, 63, 64, 512, 1024, 1099}) dir.replicate_to(1, m);
  EXPECT_EQ(dir.holders(1),
            (std::vector<MachineId>{3, 63, 64, 512, 1024, 1050, 1099}));
  EXPECT_FALSE(dir.sole_holder(1, 1050));
  EXPECT_EQ(dir.store(1024).resident_count(), 1u);

  // Invalidation drops every non-owner copy, ascending, and records the
  // dropped version for reuse.
  const std::vector<MachineId> dropped = dir.invalidate_replicas(1);
  EXPECT_EQ(dropped, (std::vector<MachineId>{3, 63, 64, 512, 1024, 1099}));
  EXPECT_TRUE(dir.sole_holder(1, 1050));
  EXPECT_TRUE(dir.reusable(1, 1024));
  dir.revalidate_to(1, 1024);
  EXPECT_TRUE(dir.present(1, 1024));

  // A write elsewhere makes the stale records non-reusable.
  dir.invalidate_replicas(1);
  dir.mark_dirty(1);
  EXPECT_FALSE(dir.reusable(1, 1024));
}

TEST(DirectoryScale, MoveAndLocalityAtHighIds) {
  ObjectDirectory dir(2048);
  dir.add_object(make_info(1, 8), 0);
  dir.add_object(make_info(2, 4), 2000);
  dir.replicate_to(1, 700);
  dir.replicate_to(1, 2047);

  // Exclusive move to a high id invalidates the other replicas.
  const int invalidated = dir.move_to(1, 1999);
  EXPECT_EQ(invalidated, 2);  // 700 and 2047; the owner's copy travelled
  EXPECT_EQ(dir.owner(1), 1999);
  EXPECT_TRUE(dir.sole_holder(1, 1999));
  EXPECT_EQ(dir.version(1), 1u);

  const std::vector<ObjectId> objs = {1, 2};
  EXPECT_EQ(dir.bytes_present(objs, 1999), 64u);
  EXPECT_EQ(dir.bytes_present(objs, 2000), 32u);
  EXPECT_EQ(dir.objects_on(1999), (std::vector<ObjectId>{1}));
}

TEST(DirectoryScale, RecoverySurgeryAtHighIds) {
  ObjectDirectory dir(1300);
  dir.add_object(make_info(1, 8), 1200);
  dir.replicate_to(1, 80);

  // Owner 1200 dies: re-home to the surviving replica at 80, drop the dead
  // copy.
  dir.set_owner(1, 80);
  dir.drop_copy(1, 1200);
  EXPECT_EQ(dir.owner(1), 80);
  EXPECT_TRUE(dir.sole_holder(1, 80));

  // Then 80 dies too: restore from stable storage onto a high id.
  dir.drop_copy(1, 80);
  dir.restore_to(1, 1234);
  EXPECT_EQ(dir.owner(1), 1234);
  EXPECT_TRUE(dir.present(1, 1234));
  EXPECT_EQ(dir.version(1), 2u);  // set_owner + restore_to each bumped it
}

TEST(DirectoryScale, ManyObjectsSpreadOverThousandMachines) {
  // Memory sanity: per-entry replica state must scale with the holders, not
  // with machine_count, so a thousand-machine directory with a thousand
  // objects is cheap.
  ObjectDirectory dir(1024);
  for (ObjectId id = 1; id <= 1000; ++id)
    dir.add_object(make_info(id, 2), static_cast<MachineId>((id * 7) % 1024));
  for (ObjectId id = 1; id <= 1000; ++id) {
    const MachineId home = static_cast<MachineId>((id * 7) % 1024);
    EXPECT_TRUE(dir.present(id, home));
    EXPECT_TRUE(dir.sole_holder(id, home));
  }
  std::size_t resident = 0;
  for (int m = 0; m < 1024; ++m) resident += dir.store(m).resident_count();
  EXPECT_EQ(resident, 1000u);
}

}  // namespace
}  // namespace jade
