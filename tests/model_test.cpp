// The model layer: CostModel fitting (deterministic, bit-identical),
// TraceReader extraction and Chrome-trace round-tripping, the profiler's
// feature measurement, and ModelPlanner's policy search.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/model/cost_model.hpp"
#include "jade/model/model_planner.hpp"
#include "jade/model/profiler.hpp"
#include "jade/model/trace_reader.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

using model::CostModel;
using model::Observation;
using model::WorkloadFeatures;

/// Bit pattern of a double — coefficient reproducibility means *bits*, not
/// approximate equality.
std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof u);
  return u;
}

WorkloadFeatures synthetic_features() {
  WorkloadFeatures f;
  f.valid = true;
  f.tasks = 120;
  f.total_work = 1.2e8;
  f.mean_grain = 1e6;
  f.max_grain = 4e6;
  f.fanout = 2;
  f.root_fanout = 16;
  f.critical_path_work = 2.4e7;
  f.avg_parallelism = 5;
  f.payload_bytes = 2e6;
  f.messages = 800;
  f.declared_bytes = 3e6;
  f.payload_bytes_nolocal = 8e6;
  f.messages_nolocal = 3200;
  f.max_queue_depth = 24;
  f.spec_speedup = 1.0;
  return f;
}

/// Observations generated *from the basis itself* with known coefficients:
/// the fit must recover them (the system is exactly determined up to the
/// tiny ridge term).
std::vector<Observation> synthetic_observations() {
  const std::array<double, CostModel::kTerms> truth = {1.05, 0.9, 0.2, 0.01};
  std::vector<Observation> obs;
  const WorkloadFeatures f = synthetic_features();
  for (const auto& cluster :
       {presets::mica(8), presets::ipsc860(8), presets::ideal(4),
        presets::hrv(7)}) {
    for (int contexts : {1, 2, 4}) {
      for (bool locality : {true, false}) {
        Observation o;
        o.features = f;
        o.cluster = cluster;
        o.policy.contexts_per_machine = contexts;
        o.policy.locality = locality;
        const auto b = CostModel::basis(f, o.cluster, o.policy);
        o.actual_seconds = 0;
        for (std::size_t t = 0; t < CostModel::kTerms; ++t)
          o.actual_seconds += truth[t] * b[t];
        obs.push_back(std::move(o));
      }
    }
  }
  return obs;
}

TEST(CostModelFit, RefitIsBitIdentical) {
  const auto obs = synthetic_observations();
  CostModel a, b;
  a.fit(obs);
  b.fit(obs);
  ASSERT_TRUE(a.fitted());
  ASSERT_EQ(a.coefficients().size(), CostModel::kTerms);
  for (std::size_t t = 0; t < CostModel::kTerms; ++t)
    EXPECT_EQ(bits(a.coefficients()[t]), bits(b.coefficients()[t]))
        << "coefficient " << t << " differs between identical fits";
}

TEST(CostModelFit, RecoversGeneratingCoefficients) {
  // The observations were synthesized as truth · basis, so predictions must
  // land on the actuals (ridge 1e-9 perturbs far below this tolerance).
  const auto obs = synthetic_observations();
  CostModel m;
  m.fit(obs);
  for (const Observation& o : obs) {
    const double pred = m.predict(o.features, o.cluster, o.policy);
    EXPECT_NEAR(pred, o.actual_seconds, 1e-6 * o.actual_seconds);
  }
}

TEST(CostModelFit, FewerObservationsThanTermsThrows) {
  auto obs = synthetic_observations();
  obs.resize(3);
  CostModel m;
  EXPECT_THROW(m.fit(obs), ConfigError);
}

TEST(CostModelFit, NonPositiveObservationsAreIgnored) {
  // 4 observations, one of them degenerate: only 3 usable -> under-determined.
  auto obs = synthetic_observations();
  obs.resize(4);
  obs[1].actual_seconds = 0;
  CostModel m;
  EXPECT_THROW(m.fit(obs), ConfigError);
}

TEST(CostModel, PredictBeforeFitThrows) {
  CostModel m;
  EXPECT_FALSE(m.fitted());
  EXPECT_THROW(
      m.predict(synthetic_features(), presets::mica(8), SchedPolicy{}),
      ConfigError);
}

TEST(CostModel, CommSecondsScalesWithDemandAndTopology) {
  const double bytes = 1e7, msgs = 1e4;
  const double bus = CostModel::comm_seconds(presets::mica(8), bytes, msgs);
  const double cube =
      CostModel::comm_seconds(presets::ipsc860(8), bytes, msgs);
  const double xbar = CostModel::comm_seconds(presets::hrv(8), bytes, msgs);
  EXPECT_GT(bus, 0);
  EXPECT_GT(cube, 0);
  EXPECT_GT(xbar, 0);
  // A shared bus serializes every transfer; the crossbar spreads them.
  EXPECT_GT(bus, xbar);
  // More data on the same fabric costs more.
  EXPECT_GT(CostModel::comm_seconds(presets::mica(8), 2 * bytes, msgs), bus);
  // Zero demand is free.
  EXPECT_EQ(CostModel::comm_seconds(presets::mica(8), 0, 0), 0);
}

// --- TraceReader -----------------------------------------------------------

/// A root that spawns `tasks` independent single-write tasks, each charging
/// `work` ops — the simplest graph with known shape features.
void run_flood(Runtime& rt, int tasks, double work) {
  std::vector<SharedRef<double>> out;
  out.reserve(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i)
    out.push_back(rt.alloc<double>(4, "o" + std::to_string(i)));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < tasks; ++i) {
      auto o = out[static_cast<std::size_t>(i)];
      ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                   [o, work](TaskContext& t) {
                     t.charge(work);
                     t.write(o)[0] = 1.0;
                   });
    }
  });
}

/// A strict dependence chain: every task read-writes the same object.
void run_chain(Runtime& rt, int length, double work) {
  auto o = rt.alloc<double>(4, "chain");
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < length; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                   [o, work](TaskContext& t) {
                     t.charge(work);
                     t.write(o)[0] += 1.0;
                   });
    }
  });
}

RuntimeConfig traced_sim(int machines) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(machines);
  cfg.obs.trace = true;
  return cfg;
}

TEST(TraceReader, ExtractsKnownGraphShape) {
  Runtime rt(traced_sim(4));
  run_flood(rt, 5, 1e6);
  const auto profile = model::extract_profile(rt.trace_events(), rt.stats());
  EXPECT_EQ(profile.tasks, 5);
  EXPECT_EQ(profile.root_fanout, 5);
  EXPECT_EQ(profile.fanout, 0);  // no non-root task spawned children
  EXPECT_DOUBLE_EQ(profile.total_work, rt.stats().total_charged_work);
  EXPECT_NEAR(profile.mean_grain, 1e6, 1);
  EXPECT_GE(profile.max_queue_depth, 1);
  EXPECT_DOUBLE_EQ(profile.finish_time, rt.sim_duration());
}

TEST(TraceReader, ChromeRoundTripPreservesProfile) {
  Runtime rt(traced_sim(4));
  run_flood(rt, 8, 2e6);
  const auto direct = model::extract_profile(rt.trace_events(), rt.stats());

  std::ostringstream exported;
  rt.write_chrome_trace(exported);
  std::istringstream in(exported.str());
  const auto reparsed = model::read_chrome_trace(in);
  const auto roundtrip = model::extract_profile(reparsed, rt.stats());

  EXPECT_DOUBLE_EQ(roundtrip.tasks, direct.tasks);
  EXPECT_DOUBLE_EQ(roundtrip.total_work, direct.total_work);
  EXPECT_DOUBLE_EQ(roundtrip.mean_grain, direct.mean_grain);
  EXPECT_DOUBLE_EQ(roundtrip.max_grain, direct.max_grain);
  EXPECT_DOUBLE_EQ(roundtrip.fanout, direct.fanout);
  EXPECT_DOUBLE_EQ(roundtrip.root_fanout, direct.root_fanout);
  EXPECT_DOUBLE_EQ(roundtrip.max_queue_depth, direct.max_queue_depth);
  EXPECT_DOUBLE_EQ(roundtrip.payload_bytes, direct.payload_bytes);
  EXPECT_DOUBLE_EQ(roundtrip.messages, direct.messages);
  EXPECT_DOUBLE_EQ(roundtrip.finish_time, direct.finish_time);
}

TEST(TraceReader, MalformedJsonThrows) {
  std::istringstream in("{\"traceEvents\": [ {\"ph\": ");
  EXPECT_THROW(model::read_chrome_trace(in), ProtocolError);
}

// --- Profiler --------------------------------------------------------------

TEST(Profiler, ChainHasUnitParallelism) {
  model::ProfileOptions opts;
  opts.machines = 4;
  opts.probe_speculation = false;
  const auto f = model::profile_workload(
      [](Runtime& rt) { run_chain(rt, 8, 2e6); }, opts);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.tasks, 8);
  EXPECT_NEAR(f.total_work, 1.6e7, 1);
  // A chain's critical path is all of its work.
  EXPECT_NEAR(f.critical_path_work, f.total_work, 0.05 * f.total_work);
  EXPECT_NEAR(f.avg_parallelism, 1.0, 0.1);
  EXPECT_EQ(f.spec_speedup, 0.0);  // no spec probe taken
}

TEST(Profiler, FloodParallelismMatchesWidth) {
  model::ProfileOptions opts;
  opts.machines = 4;
  opts.probe_speculation = true;
  const auto f = model::profile_workload(
      [](Runtime& rt) { run_flood(rt, 16, 2e6); }, opts);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.tasks, 16);
  EXPECT_EQ(f.root_fanout, 16);
  // 16 independent equal tasks: the critical path is one task's work.
  EXPECT_NEAR(f.avg_parallelism, 16.0, 2.0);
  // Locality-off demand is measured (the probe ran) and never cheaper.
  EXPECT_GE(f.payload_bytes_nolocal, f.payload_bytes);
  // Independent tasks give speculation nothing to do.
  EXPECT_DOUBLE_EQ(f.spec_speedup, 1.0);
}

TEST(Profiler, ReprofilingIsDeterministic) {
  model::ProfileOptions opts;
  opts.machines = 4;
  const auto workload = [](Runtime& rt) { run_flood(rt, 6, 1e6); };
  const auto a = model::profile_workload(workload, opts);
  const auto b = model::profile_workload(workload, opts);
  EXPECT_EQ(bits(a.tasks), bits(b.tasks));
  EXPECT_EQ(bits(a.total_work), bits(b.total_work));
  EXPECT_EQ(bits(a.critical_path_work), bits(b.critical_path_work));
  EXPECT_EQ(bits(a.avg_parallelism), bits(b.avg_parallelism));
  EXPECT_EQ(bits(a.payload_bytes), bits(b.payload_bytes));
  EXPECT_EQ(bits(a.messages), bits(b.messages));
  EXPECT_EQ(bits(a.payload_bytes_nolocal), bits(b.payload_bytes_nolocal));
  EXPECT_EQ(bits(a.max_queue_depth), bits(b.max_queue_depth));
  EXPECT_EQ(bits(a.spec_speedup), bits(b.spec_speedup));
}

// --- ModelPlanner ----------------------------------------------------------

bool same_policy(const SchedPolicy& a, const SchedPolicy& b) {
  return a.contexts_per_machine == b.contexts_per_machine &&
         a.locality == b.locality && a.spec.enabled == b.spec.enabled;
}

TEST(ModelPlanner, CandidateGridStartsAtBaseWithoutDuplicates) {
  SchedPolicy base;  // ctx=2, locality on, spec off — inside the grid
  const auto cands = model::ModelPlanner::candidate_policies(base);
  ASSERT_FALSE(cands.empty());
  EXPECT_TRUE(same_policy(cands[0], base));
  // 3 context levels x 2 locality x 2 spec = 12 cells; the base occupies
  // one of them, listed once (as candidate 0).
  EXPECT_EQ(cands.size(), 12u);
  for (std::size_t i = 0; i < cands.size(); ++i)
    for (std::size_t j = i + 1; j < cands.size(); ++j)
      EXPECT_FALSE(same_policy(cands[i], cands[j]))
          << "candidates " << i << " and " << j << " coincide";
}

TEST(ModelPlanner, UnfittedModelIsIdentity) {
  model::ModelPlanner planner{CostModel{}, synthetic_features()};
  SchedPolicy base;
  base.contexts_per_machine = 1;
  base.locality = false;
  const SchedPolicy planned = planner.plan_policy(presets::mica(8), base);
  EXPECT_TRUE(same_policy(planned, base));
}

TEST(ModelPlanner, InvalidFeaturesAreIdentity) {
  CostModel m;
  m.fit(synthetic_observations());
  model::ModelPlanner planner{std::move(m), WorkloadFeatures{}};
  SchedPolicy base;
  const SchedPolicy planned = planner.plan_policy(presets::mica(8), base);
  EXPECT_TRUE(same_policy(planned, base));
}

TEST(ModelPlanner, EnablesSpeculationWhenProfiledSpeedupDominates) {
  // A workload whose profile says speculation halves the critical path:
  // every spec-on candidate predicts ~half the base time, far past the 10%
  // margin, so the tuner must deviate and must deviate *toward* spec.
  WorkloadFeatures f = synthetic_features();
  f.critical_path_work = 1.0e8;  // chain-dominated
  f.total_work = 1.1e8;
  f.avg_parallelism = 1.1;
  f.payload_bytes = 0;  // keep comm out of the comparison
  f.messages = 0;
  f.payload_bytes_nolocal = 0;
  f.messages_nolocal = 0;
  f.spec_speedup = 2.0;

  // Fit from basis-synthesized observations over this feature vector so the
  // predictions reproduce the basis exactly.
  std::vector<Observation> obs;
  for (const auto& cluster : {presets::mica(8), presets::ipsc860(8)}) {
    for (int contexts : {1, 2}) {
      for (bool spec : {false, true}) {
        Observation o;
        o.features = f;
        o.cluster = cluster;
        o.policy.contexts_per_machine = contexts;
        o.policy.spec.enabled = spec;
        const auto b = CostModel::basis(f, o.cluster, o.policy);
        o.actual_seconds = b[0] + 0.9 * b[1] + 0.2 * b[2];
        obs.push_back(std::move(o));
      }
    }
  }
  CostModel m;
  m.fit(obs);
  model::ModelPlanner planner{std::move(m), f};

  SchedPolicy base;  // spec off
  const SchedPolicy planned = planner.plan_policy(presets::mica(8), base);
  EXPECT_TRUE(planned.spec.enabled);
  EXPECT_LT(planner.predict(presets::mica(8), planned),
            0.9 * planner.predict(presets::mica(8), base));
}

TEST(ModelPlanner, RespectsSafetyMargin) {
  // spec_speedup = 1: every candidate's basis differs from the base only in
  // the overlap weighting; nothing clears the 10% margin, so the hand-set
  // base must pass through untouched.
  WorkloadFeatures f = synthetic_features();
  f.spec_speedup = 1.0;
  CostModel m;
  m.fit(synthetic_observations());
  model::ModelPlanner planner{std::move(m), f};
  SchedPolicy base;
  const SchedPolicy planned = planner.plan_policy(presets::ipsc860(8), base);
  EXPECT_TRUE(same_policy(planned, base));
}

}  // namespace
}  // namespace jade
