// Differential property test for the serializer: random operation sequences
// are mirrored against a naive reference model (full-scan enabledness, no
// counters, no fast paths).  Task states must agree after every operation —
// this guards the O(1) queue-counter fast paths against the reference
// semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "jade/core/queues.hpp"
#include "jade/support/rng.hpp"

namespace jade {
namespace {

using access::kCommute;
using access::kRead;
using access::kWrite;

/// Naive reference: same rules, implemented with brute-force scans.
class RefModel {
 public:
  struct Rec {
    int task;
    std::uint8_t immediate;
    std::uint8_t deferred;
    std::uint8_t effective() const {
      return static_cast<std::uint8_t>(immediate | deferred);
    }
  };

  int create(const std::vector<std::tuple<int, std::uint8_t, std::uint8_t>>&
                 recs) {
    const int id = static_cast<int>(states_.size());
    states_.push_back(TaskState::kPending);
    for (auto [obj, imm, def] : recs)
      queues_[obj].push_back(Rec{id, imm, def});
    refresh();
    return id;
  }

  void start(int task) {
    EXPECT_EQ(states_[task], TaskState::kReady);
    states_[task] = TaskState::kRunning;
  }

  void complete(int task) {
    states_[task] = TaskState::kCompleted;
    for (auto& [obj, q] : queues_)
      std::erase_if(q, [task](const Rec& r) { return r.task == task; });
    refresh();
  }

  void retire(int task, int obj, std::uint8_t bits) {
    auto& q = queues_[obj];
    for (Rec& r : q) {
      if (r.task != task) continue;
      r.immediate &= static_cast<std::uint8_t>(~bits);
      r.deferred &= static_cast<std::uint8_t>(~bits);
    }
    std::erase_if(q, [task](const Rec& r) {
      return r.task == task && r.effective() == 0;
    });
    refresh();
  }

  void convert(int task, int obj, std::uint8_t bits) {
    for (Rec& r : queues_[obj]) {
      if (r.task != task) continue;
      r.deferred &= static_cast<std::uint8_t>(~bits);
      r.immediate |= bits;
    }
  }

  /// Would a conversion/acquire of `bits` on `obj` be enabled for `task`?
  bool enabled(int task, int obj, std::uint8_t bits) const {
    auto it = queues_.find(obj);
    if (it == queues_.end()) return true;
    for (const Rec& r : it->second) {
      if (r.task == task) return true;  // reached own record: nothing ahead
      if (access::conflicts(r.effective(), bits)) return false;
    }
    return true;
  }

  TaskState state(int task) const { return states_[task]; }

 private:
  void refresh() {
    for (int t = 0; t < static_cast<int>(states_.size()); ++t) {
      if (states_[t] != TaskState::kPending) continue;
      bool ready = true;
      for (const auto& [obj, q] : queues_) {
        std::uint8_t prior = 0;
        for (const Rec& r : q) {
          if (r.task == t) {
            if (r.immediate != 0 && [&] {
                  return access::conflicts(prior, r.immediate);
                }())
              ready = false;
            break;
          }
          prior |= r.effective();
        }
        if (!ready) break;
      }
      if (ready) states_[t] = TaskState::kReady;
    }
  }

  std::vector<TaskState> states_;
  std::map<int, std::vector<Rec>> queues_;
};

class NullListener : public SerializerListener {
 public:
  void on_task_ready(TaskNode*) override {}
  void on_task_unblocked(TaskNode*) override {}
};

std::vector<AccessRequest> make_requests(
    const std::vector<std::tuple<int, std::uint8_t, std::uint8_t>>& recs) {
  std::vector<AccessRequest> out;
  for (auto [obj, imm, def] : recs) {
    AccessRequest r;
    r.obj = static_cast<ObjectId>(obj + 1);
    r.add_immediate = imm;
    r.add_deferred = def;
    out.push_back(r);
  }
  return out;
}

class SerializerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializerPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  NullListener listener;
  Serializer ser(&listener);
  RefModel ref;

  const int kObjects = 4;
  std::vector<TaskNode*> nodes;     // by model id
  std::vector<std::vector<std::tuple<int, std::uint8_t, std::uint8_t>>>
      specs;  // records per task, for with-cont choices

  auto random_bits = [&](bool allow_zero) -> std::uint8_t {
    for (;;) {
      const auto b = static_cast<std::uint8_t>(rng.next_below(8));
      // Avoid mixing commute with read/write in one record (the library
      // allows it but the reference model's simplicity doesn't need it).
      if ((b & kCommute) && (b & (kRead | kWrite))) continue;
      if (b == 0 && !allow_zero) continue;
      return b;
    }
  };

  for (int step = 0; step < 300; ++step) {
    const int op = static_cast<int>(rng.next_below(4));
    if (op == 0 || nodes.empty()) {
      // create a root child with 1-3 records
      std::vector<std::tuple<int, std::uint8_t, std::uint8_t>> recs;
      const int n = 1 + static_cast<int>(rng.next_below(3));
      std::vector<int> used;
      for (int i = 0; i < n; ++i) {
        const int obj = static_cast<int>(rng.next_below(kObjects));
        if (std::find(used.begin(), used.end(), obj) != used.end()) continue;
        used.push_back(obj);
        std::uint8_t imm = random_bits(true);
        std::uint8_t def = random_bits(imm != 0);
        def &= static_cast<std::uint8_t>(~imm);
        if ((imm | def) == 0) imm = kRead;
        recs.push_back({obj, imm, def});
      }
      TaskNode* node =
          ser.create_task(ser.root(), make_requests(recs), nullptr);
      const int id = ref.create(recs);
      ASSERT_EQ(static_cast<int>(nodes.size()), id);
      nodes.push_back(node);
      specs.push_back(recs);
    } else if (op == 1) {
      // start some ready task
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        if (nodes[t]->state() == TaskState::kReady) {
          ser.task_started(nodes[t]);
          ref.start(static_cast<int>(t));
          break;
        }
      }
    } else if (op == 2) {
      // complete some running task
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        if (nodes[t]->state() == TaskState::kRunning) {
          ser.complete_task(nodes[t]);
          ref.complete(static_cast<int>(t));
          break;
        }
      }
    } else {
      // with-cont on a running task: retire an immediate right or convert
      // a deferred one (only when the reference says it will not block,
      // keeping the models in lockstep).
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        if (nodes[t]->state() != TaskState::kRunning) continue;
        bool did = false;
        for (auto& [obj, imm, def] : specs[t]) {
          if (imm != 0 && rng.next_bool(0.5)) {
            AccessRequest r;
            r.obj = static_cast<ObjectId>(obj + 1);
            r.remove = imm;
            EXPECT_FALSE(ser.update_spec(nodes[t], {r}));
            ref.retire(static_cast<int>(t), obj, imm);
            imm = 0;
            did = true;
            break;
          }
          if (def != 0 &&
              ref.enabled(static_cast<int>(t), obj,
                          static_cast<std::uint8_t>(imm | def))) {
            AccessRequest r;
            r.obj = static_cast<ObjectId>(obj + 1);
            r.add_immediate = def;
            EXPECT_FALSE(ser.update_spec(nodes[t], {r}))
                << "conversion blocked although the reference model says "
                   "it is enabled";
            ref.convert(static_cast<int>(t), obj, def);
            imm |= def;
            def = 0;
            did = true;
            break;
          }
        }
        if (did) break;
      }
    }

    // Lockstep comparison after every operation.
    for (std::size_t t = 0; t < nodes.size(); ++t) {
      ASSERT_EQ(nodes[t]->state(), ref.state(static_cast<int>(t)))
          << "divergence at step " << step << " task " << t << " (seed "
          << GetParam() << ")";
    }
  }
}

// The paper's with-cont can retire rights one at a time (no_rd, no_wr) while
// the task keeps its other accesses, and commuting tasks retire/complete in
// whatever order the engine interleaves them — not creation order.  This
// variant drives both: tasks are started and completed in *random* order
// (commuters on a shared hot object genuinely interleave), and retirement
// removes a single random bit from one record instead of the whole
// immediate set.
TEST_P(SerializerPropertyTest, PartialRetirementAndCommuteInterleavings) {
  Rng rng(GetParam() ^ 0x5eedull);
  NullListener listener;
  Serializer ser(&listener);
  RefModel ref;

  const int kObjects = 4;
  const int kHotObject = 0;  // commuters pile onto this one
  std::vector<TaskNode*> nodes;
  std::vector<std::vector<std::tuple<int, std::uint8_t, std::uint8_t>>>
      specs;

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.next_below(5));
    if (op == 0 || nodes.empty()) {
      std::vector<std::tuple<int, std::uint8_t, std::uint8_t>> recs;
      if (rng.next_bool(0.5)) {
        // A commuter on the hot object; commute does not conflict with
        // commute, so several of these run (and finish) interleaved.
        recs.push_back({kHotObject, kCommute, 0});
      } else {
        const int obj = static_cast<int>(rng.next_below(kObjects));
        // Both read and write immediate rights, so retirement has separate
        // no_rd / no_wr steps to take.
        recs.push_back({obj, static_cast<std::uint8_t>(kRead | kWrite), 0});
      }
      // Maybe one more plain record on another object.
      const int extra = static_cast<int>(rng.next_below(kObjects));
      if (extra != std::get<0>(recs.front()) && rng.next_bool(0.5))
        recs.push_back({extra, kRead, 0});
      TaskNode* node =
          ser.create_task(ser.root(), make_requests(recs), nullptr);
      const int id = ref.create(recs);
      ASSERT_EQ(static_cast<int>(nodes.size()), id);
      nodes.push_back(node);
      specs.push_back(recs);
    } else if (op == 1) {
      // start a RANDOM ready task, not the oldest
      std::vector<std::size_t> ready;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kReady) ready.push_back(t);
      if (!ready.empty()) {
        const std::size_t t =
            ready[rng.next_below(static_cast<std::uint64_t>(ready.size()))];
        ser.task_started(nodes[t]);
        ref.start(static_cast<int>(t));
      }
    } else if (op == 2) {
      // complete a RANDOM running task — commuters retire out of creation
      // order, exactly what an engine interleaving produces
      std::vector<std::size_t> running;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kRunning) running.push_back(t);
      if (!running.empty()) {
        const std::size_t t = running[rng.next_below(
            static_cast<std::uint64_t>(running.size()))];
        ser.complete_task(nodes[t]);
        ref.complete(static_cast<int>(t));
      }
    } else {
      // partial retirement: drop ONE bit (no_rd, no_wr, or no_cm) from one
      // record of a random running task
      std::vector<std::size_t> running;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kRunning) running.push_back(t);
      if (!running.empty()) {
        const std::size_t t = running[rng.next_below(
            static_cast<std::uint64_t>(running.size()))];
        for (auto& [obj, imm, def] : specs[t]) {
          if (imm == 0) continue;
          std::uint8_t bit = 0;
          for (std::uint8_t candidate : {kRead, kWrite, kCommute})
            if ((imm & candidate) && (bit == 0 || rng.next_bool(0.5)))
              bit = candidate;
          AccessRequest r;
          r.obj = static_cast<ObjectId>(obj + 1);
          r.remove = bit;
          EXPECT_FALSE(ser.update_spec(nodes[t], {r}));
          ref.retire(static_cast<int>(t), obj, bit);
          imm &= static_cast<std::uint8_t>(~bit);
          break;
        }
      }
    }

    for (std::size_t t = 0; t < nodes.size(); ++t) {
      ASSERT_EQ(nodes[t]->state(), ref.state(static_cast<int>(t)))
          << "divergence at step " << step << " task " << t << " (seed "
          << GetParam() << ")";
    }
  }
}

// Speculative execution (SchedPolicy::spec) rides on four serializer
// primitives: spec_eligible / spec_start / spec_commit / spec_abort, plus
// the per-object write-epoch ledger that acquire() maintains.  This variant
// interleaves random speculations with normal starts, completions, and
// acquisitions, and checks the invariants the engines rely on:
//   * spec_start / spec_abort never perturb the task state machine (the
//     reference model knows nothing about speculation and must stay in
//     lockstep);
//   * spec_commit behaves exactly like task_started at the task's serial
//     position;
//   * write epochs advance exactly on exercised write/commute acquisitions
//     (the test keeps its own ledger and compares);
//   * a speculation whose captured epochs are unchanged at enablement is
//     committable — and whether it commits or (crash-)aborts, every other
//     task's state is untouched.
TEST_P(SerializerPropertyTest, SpeculativeCommitAbortInterleavings) {
  Rng rng(GetParam() ^ 0x42c0ull);
  NullListener listener;
  Serializer ser(&listener);
  RefModel ref;

  const int kObjects = 4;
  std::vector<TaskNode*> nodes;
  std::vector<std::vector<std::tuple<int, std::uint8_t, std::uint8_t>>> specs;
  std::vector<std::uint64_t> epoch_ledger(kObjects, 0);
  // Live speculations: task index -> epochs captured at spec_start.
  std::map<std::size_t, std::vector<std::pair<int, std::uint64_t>>> live;

  auto obj_id = [](int obj) { return static_cast<ObjectId>(obj + 1); };

  for (int step = 0; step < 500; ++step) {
    const int op = static_cast<int>(rng.next_below(6));
    if (op == 0 || nodes.empty()) {
      // Create: immediate-only read/write records (a waiting commute right
      // is never speculable; the commute interleavings have their own suite
      // above).
      std::vector<std::tuple<int, std::uint8_t, std::uint8_t>> recs;
      const int n = 1 + static_cast<int>(rng.next_below(3));
      std::vector<int> used;
      for (int i = 0; i < n; ++i) {
        const int obj = static_cast<int>(rng.next_below(kObjects));
        if (std::find(used.begin(), used.end(), obj) != used.end()) continue;
        used.push_back(obj);
        const std::uint8_t imm =
            rng.next_bool(0.5) ? static_cast<std::uint8_t>(kRead | kWrite)
                               : (rng.next_bool(0.5) ? kRead : kWrite);
        recs.push_back({obj, imm, 0});
      }
      TaskNode* node =
          ser.create_task(ser.root(), make_requests(recs), nullptr);
      const int id = ref.create(recs);
      ASSERT_EQ(static_cast<int>(nodes.size()), id);
      nodes.push_back(node);
      specs.push_back(recs);
    } else if (op == 1) {
      // Start a random ready, non-speculating task the normal way.
      std::vector<std::size_t> ready;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kReady && !nodes[t]->speculating())
          ready.push_back(t);
      if (!ready.empty()) {
        const std::size_t t =
            ready[rng.next_below(static_cast<std::uint64_t>(ready.size()))];
        ser.task_started(nodes[t]);
        ref.start(static_cast<int>(t));
      }
    } else if (op == 2) {
      // Complete a random running task.
      std::vector<std::size_t> running;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kRunning) running.push_back(t);
      if (!running.empty()) {
        const std::size_t t = running[rng.next_below(
            static_cast<std::uint64_t>(running.size()))];
        ser.complete_task(nodes[t]);
        ref.complete(static_cast<int>(t));
      }
    } else if (op == 3) {
      // A running task exercises one of its immediate rights (only when the
      // reference says it will not block, keeping the models in lockstep).
      // Exercised writes are what aborts speculations downstream.
      std::vector<std::size_t> running;
      for (std::size_t t = 0; t < nodes.size(); ++t)
        if (nodes[t]->state() == TaskState::kRunning) running.push_back(t);
      if (!running.empty()) {
        const std::size_t t = running[rng.next_below(
            static_cast<std::uint64_t>(running.size()))];
        for (auto& [obj, imm, def] : specs[t]) {
          if (imm == 0) continue;
          const std::uint8_t bit =
              (imm & kWrite) && rng.next_bool(0.6) ? kWrite : imm;
          if (!ref.enabled(static_cast<int>(t), obj,
                           static_cast<std::uint8_t>(bit)))
            continue;
          EXPECT_FALSE(ser.acquire(nodes[t], obj_id(obj), bit));
          if (bit & (kWrite | kCommute))
            ++epoch_ledger[static_cast<std::size_t>(obj)];
          break;
        }
      }
    } else if (op == 4) {
      // Start a speculation on the first eligible pending task.
      for (std::size_t t = 0; t < nodes.size(); ++t) {
        if (live.contains(t)) continue;
        std::vector<ObjectId> contested;
        if (!ser.spec_eligible(nodes[t], &contested)) continue;
        ser.spec_start(nodes[t]);
        EXPECT_TRUE(nodes[t]->speculating());
        auto& captured = live[t];
        for (auto& [obj, imm, def] : specs[t])
          captured.push_back({obj, ser.write_epoch(obj_id(obj))});
        break;
      }
    } else {
      // Decide an enabled speculation.  The engines' commit check: commit
      // iff every captured epoch is unchanged; aborting a clean one is also
      // always legal (that is the crash path).
      for (auto it = live.begin(); it != live.end(); ++it) {
        const std::size_t t = it->first;
        if (nodes[t]->state() != TaskState::kReady) continue;
        bool clean = true;
        for (auto& [obj, e] : it->second)
          if (ser.write_epoch(obj_id(obj)) != e) clean = false;
        if (clean && rng.next_bool(0.7)) {
          ser.spec_commit(nodes[t]);
          ref.start(static_cast<int>(t));  // commit == start, serial position
        } else {
          ser.spec_abort(nodes[t]);
          // The reference never knew: the task is simply ready again.
        }
        EXPECT_FALSE(nodes[t]->speculating());
        live.erase(it);
        break;
      }
    }

    // Epoch-ledger lockstep: epochs advance exactly on exercised
    // write/commute acquisitions.
    for (int o = 0; o < kObjects; ++o)
      ASSERT_EQ(ser.write_epoch(obj_id(o)),
                epoch_ledger[static_cast<std::size_t>(o)])
          << "epoch divergence at step " << step << " object " << o
          << " (seed " << GetParam() << ")";
    // State lockstep: speculation must be invisible to the state machine.
    for (std::size_t t = 0; t < nodes.size(); ++t)
      ASSERT_EQ(nodes[t]->state(), ref.state(static_cast<int>(t)))
          << "divergence at step " << step << " task " << t << " (seed "
          << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerPropertyTest,
                         ::testing::Values(1ull, 7ull, 13ull, 99ull, 1234ull,
                                           777ull, 31337ull, 0xc0ffeeull));

}  // namespace
}  // namespace jade
