// Cross-application integration tests: several of the paper's programs
// composed into one Jade run must each produce their reference results —
// the task graphs interleave arbitrarily but never interfere (they share
// no objects), and shared-object isolation is exactly what the model
// guarantees.
#include <gtest/gtest.h>

#include "jade/apps/backsubst.hpp"
#include "jade/apps/cholesky.hpp"
#include "jade/apps/jmake.hpp"
#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"

namespace jade::apps {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ipsc860(machines);
  return cfg;
}

class IntegrationTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(IntegrationTest, ThreeApplicationsShareOneRuntime) {
  // References.
  const auto a = make_spd(32, 0.2, 5);
  auto factored = a;
  factor_serial(factored);

  WaterConfig wc;
  wc.molecules = 60;
  wc.groups = 4;
  wc.timesteps = 2;
  auto water_expect = make_water(wc);
  water_run_serial(wc, water_expect);

  const auto mf = project_makefile(5, 2);
  const auto make_expect = make_serial(mf);

  // One runtime, three interleaved task graphs.
  Runtime rt(config_for(GetParam()));
  auto jm = upload_matrix(rt, a);
  auto w = upload_water(rt, wc, make_water(wc));
  auto jmk = upload_make(rt, mf);
  int commands = 0;
  rt.run([&](TaskContext& ctx) {
    factor_jade(ctx, jm);
    water_run_jade(ctx, w);
    make_jade(ctx, jmk, &commands);
  });

  EXPECT_EQ(download_matrix(rt, jm).cols, factored.cols);
  EXPECT_EQ(download_water(rt, w).pos, water_expect.pos);
  EXPECT_EQ(download_make(rt, jmk).hash, make_expect.hash);
  EXPECT_EQ(commands, make_expect.commands_run);
}

TEST_P(IntegrationTest, OneFactorManyConcurrentSolves) {
  // Factor once; four pipelined forward solves share the factored columns
  // read-only and therefore run concurrently, each against its own
  // right-hand side.
  const int n = 24;
  const auto a = make_spd(n, 0.3, 9);
  auto l = a;
  factor_serial(l);

  Rng rng(3);
  std::vector<std::vector<double>> rhs(4);
  std::vector<std::vector<double>> expect;
  for (auto& b : rhs) {
    b.resize(n);
    for (double& v : b) v = rng.next_double(-1, 1);
    expect.push_back(forward_solve(l, b));
  }

  Runtime rt(config_for(GetParam()));
  auto jmat = upload_matrix(rt, a);
  std::vector<SharedRef<double>> xs;
  for (const auto& b : rhs) xs.push_back(rt.alloc_init<double>(b));
  rt.run([&](TaskContext& ctx) {
    factor_jade(ctx, jmat);
    for (auto& x : xs)
      forward_solve_jade(ctx, jmat, x, /*pipelined=*/true);
  });
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_EQ(rt.get(xs[i]), expect[i]) << "rhs " << i;
}

TEST_P(IntegrationTest, StatsAggregateAcrossComposedGraphs) {
  Runtime rt(config_for(GetParam()));
  const auto mf = wide_makefile(6);
  auto jmk = upload_make(rt, mf);
  auto v = rt.alloc<std::int64_t>(1);
  rt.run([&](TaskContext& ctx) {
    make_jade(ctx, jmk, nullptr);
    for (int i = 0; i < 3; ++i)
      ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                   [v](TaskContext& t) { t.commute(v)[0] += 1; });
  });
  EXPECT_EQ(rt.stats().tasks_created, 6u + 3u);
  if (GetParam() == EngineKind::kSim) {
    EXPECT_GT(rt.sim_duration(), 0.0);
    EXPECT_GT(rt.stats().total_charged_work, 0.0);
  }
  EXPECT_EQ(rt.get(v)[0], 3);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, IntegrationTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade::apps
