// Tests of the constraint-relaxation solver (weighted-Jacobi stencil) —
// the workload whose per-iteration halo reads exercise df_rd dispatch
// prefetch and partial retirement via with-continuations.
#include <gtest/gtest.h>

#include <sstream>

#include "jade/apps/relax.hpp"
#include "jade/mach/presets.hpp"

namespace jade::apps {
namespace {

RelaxConfig small_config() {
  RelaxConfig c;
  c.rows = 24;
  c.cols = 20;
  c.strips = 4;
  c.iterations = 6;
  return c;
}

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

TEST(RelaxSerial, DeterministicInSeed) {
  const auto c = small_config();
  auto a = make_relax(c);
  auto b = make_relax(c);
  relax_run_serial(c, a);
  relax_run_serial(c, b);
  EXPECT_EQ(a.grid, b.grid);
}

TEST(RelaxSerial, ConvergesTowardHarmonic) {
  RelaxConfig c = small_config();
  c.iterations = 80;
  c.omega = 0.9;
  auto s = make_relax(c);
  const double before = relax_residual(s);
  relax_run_serial(c, s);
  const double after = relax_residual(s);
  EXPECT_GT(before, 0.0);
  // Weighted Jacobi is a contraction toward the discrete harmonic
  // interpolant of the boundary; 80 sweeps must cut the defect hard.
  EXPECT_LT(after, 0.2 * before);
}

TEST(RelaxSerial, DiscreteHarmonicIsFixedPoint) {
  // h(x, y) = x^2 - y^2 satisfies the 5-point Laplacian exactly, and with
  // integer cell values and omega = 0.5 every sweep operation is exact in
  // doubles — so the grid must not change at all.
  RelaxConfig c;
  c.rows = 12;
  c.cols = 15;
  c.strips = 3;
  c.iterations = 9;
  c.omega = 0.5;
  RelaxState s;
  s.rows = c.rows;
  s.cols = c.cols;
  s.grid.resize(static_cast<std::size_t>(c.rows) * c.cols);
  for (int r = 0; r < c.rows; ++r)
    for (int col = 0; col < c.cols; ++col)
      s.at(r, col) = static_cast<double>(col * col - r * r);
  EXPECT_EQ(relax_residual(s), 0.0);
  auto expect = s.grid;
  relax_run_serial(c, s);
  EXPECT_EQ(s.grid, expect);
}

class JadeRelaxTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(JadeRelaxTest, MatchesSerialBitExactly) {
  for (const bool pipelined : {true, false}) {
    RelaxConfig c = small_config();
    c.pipelined = pipelined;
    auto expect = make_relax(c);
    relax_run_serial(c, expect);

    Runtime rt(config_for(GetParam()));
    auto w = upload_relax(rt, c, make_relax(c));
    rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
    const auto got = download_relax(rt, w);
    EXPECT_EQ(got.grid, expect.grid) << "pipelined=" << pipelined;
    EXPECT_DOUBLE_EQ(relax_checksum(got), relax_checksum(expect));
  }
}

TEST_P(JadeRelaxTest, StripCountDoesNotChangeResult) {
  auto run_strips = [&](int strips) {
    RelaxConfig c = small_config();
    c.strips = strips;
    Runtime rt(config_for(GetParam()));
    auto w = upload_relax(rt, c, make_relax(c));
    rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
    return download_relax(rt, w).grid;
  };
  const auto base = run_strips(1);
  EXPECT_EQ(run_strips(3), base);
  EXPECT_EQ(run_strips(8), base);
}

TEST_P(JadeRelaxTest, TaskCountMatchesStructure) {
  const auto c = small_config();
  Runtime rt(config_for(GetParam()));
  auto w = upload_relax(rt, c, make_relax(c));
  rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
  // One sweep task per strip per iteration; no serial phase.
  EXPECT_EQ(rt.stats().tasks_created,
            static_cast<std::uint64_t>(c.iterations) * c.strips);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, JadeRelaxTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                             default: return "Unknown";
                           }
                         });

TEST(JadeRelaxSim, MoreMachinesFinishSooner) {
  auto duration = [](int machines) {
    RelaxConfig c;
    c.rows = 64;
    c.cols = 64;
    c.strips = 8;
    c.iterations = 4;
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::dash(machines);
    Runtime rt(std::move(cfg));
    auto w = upload_relax(rt, c, make_relax(c));
    rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
    return rt.sim_duration();
  };
  EXPECT_LT(duration(4), 0.6 * duration(1));
}

TEST(JadeRelaxSim, TraceDeterministicWithSpeculationOn) {
  auto spec_config = [] {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ideal(4);
    cfg.sched.spec.enabled = true;
    cfg.obs.trace = true;
    return cfg;
  };
  auto run_once = [&](std::string* trace) {
    RelaxConfig c = small_config();
    c.pipelined = true;
    Runtime rt(spec_config());
    auto w = upload_relax(rt, c, make_relax(c));
    rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
    std::ostringstream os;
    rt.write_chrome_trace(os);
    *trace = os.str();
    return download_relax(rt, w).grid;
  };
  std::string t1, t2;
  const auto g1 = run_once(&t1);
  const auto g2 = run_once(&t2);
  EXPECT_EQ(g1, g2);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);

  RelaxConfig c = small_config();
  auto expect = make_relax(c);
  relax_run_serial(c, expect);
  EXPECT_EQ(g1, expect.grid);
}

TEST(JadeRelaxCluster, SmokeMatchesSerial) {
  // The sweep body is registered (relax.sweep_strip), so the same program
  // runs across real worker processes.
  RelaxConfig c;
  c.rows = 16;
  c.cols = 12;
  c.strips = 3;
  c.iterations = 4;
  auto expect = make_relax(c);
  relax_run_serial(c, expect);

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kCluster;
  cfg.cluster_proc.workers = 2;
  Runtime rt(std::move(cfg));
  auto w = upload_relax(rt, c, make_relax(c));
  rt.run([&](TaskContext& ctx) { relax_run_jade(ctx, w); });
  const auto got = download_relax(rt, w);
  EXPECT_EQ(got.grid, expect.grid);
}

}  // namespace
}  // namespace jade::apps
