// Chaos property tests: real applications (LWS, sparse Cholesky) survive
// seeded machine crashes and message loss on the Mica preset and still
// produce results byte-identical to the serial execution — the paper's
// determinism guarantee ("all parallel executions of a Jade program
// deterministically generate the same result as a serial execution")
// extended across fail-stop faults by the ft/ recovery protocol.
#include <gtest/gtest.h>

#include <vector>

#include "jade/apps/cholesky.hpp"
#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

constexpr int kMachines = 8;

RuntimeConfig sim_mica(FaultConfig fault = {}) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::mica(kMachines);
  cfg.fault = std::move(fault);
  return cfg;
}

/// Two crashes inside the busy middle of a run that takes `duration`
/// fault-free, plus light message loss, derived from `seed`.
FaultConfig chaos_config(std::uint64_t seed, SimTime duration) {
  FaultConfig f;
  f.enabled = true;
  f.seed = seed;
  f.auto_crashes = 2;
  f.crash_window_begin = 0.2 * duration;
  f.crash_window_end = 0.8 * duration;
  f.drop_probability = 0.02;
  return f;
}

// --- LWS ------------------------------------------------------------------

apps::WaterConfig small_lws() {
  apps::WaterConfig wc;
  wc.molecules = 216;
  wc.groups = 13;
  wc.timesteps = 2;
  return wc;
}

struct LwsRun {
  std::vector<double> pos;
  RuntimeStats stats;
  SimTime duration = 0;
};

LwsRun run_lws(const apps::WaterConfig& wc, const apps::WaterState& initial,
               FaultConfig fault = {}) {
  Runtime rt(sim_mica(std::move(fault)));
  auto w = apps::upload_water(rt, wc, initial);
  rt.run([&](TaskContext& ctx) { apps::water_run_jade(ctx, w); });
  return {apps::download_water(rt, w).pos, rt.stats(), rt.sim_duration()};
}

TEST(ChaosLws, SurvivesCrashesByteIdentically) {
  const auto wc = small_lws();
  const auto initial = apps::make_water(wc);
  auto expect = initial;
  apps::water_run_serial(wc, expect);

  // Fault layer armed but quiet: identical result, heartbeats flowing.
  FaultConfig quiet;
  quiet.enabled = true;
  const auto baseline = run_lws(wc, initial, quiet);
  ASSERT_EQ(baseline.pos, expect.pos);
  EXPECT_GT(baseline.stats.heartbeats_sent, 0u);
  EXPECT_EQ(baseline.stats.machine_crashes, 0u);
  ASSERT_GT(baseline.duration, 0.0);

  std::uint64_t total_killed = 0;
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const auto run = run_lws(wc, initial, chaos_config(seed, baseline.duration));
    EXPECT_EQ(run.pos, expect.pos) << "seed=" << seed;
    EXPECT_EQ(run.stats.machine_crashes, 2u) << "seed=" << seed;
    EXPECT_EQ(run.stats.tasks_requeued, run.stats.tasks_killed);
    EXPECT_GT(run.duration, 0.0) << "seed=" << seed;
    total_killed += run.stats.tasks_killed;
  }
  // Crashes land mid-run on a busy 8-machine cluster: across three
  // schedules some running attempt must have died and been re-executed.
  EXPECT_GT(total_killed, 0u);
}

TEST(ChaosLws, MessageLossAloneIsInvisibleInTheResult) {
  const auto wc = small_lws();
  const auto initial = apps::make_water(wc);
  auto expect = initial;
  apps::water_run_serial(wc, expect);

  FaultConfig f;
  f.enabled = true;
  f.seed = 5;
  f.drop_probability = 0.1;  // heavy loss, no crashes
  const auto run = run_lws(wc, initial, f);
  EXPECT_EQ(run.pos, expect.pos);
  EXPECT_GT(run.stats.messages_dropped, 0u);
  EXPECT_EQ(run.stats.message_retries, run.stats.messages_dropped);
  EXPECT_EQ(run.stats.machine_crashes, 0u);
  EXPECT_EQ(run.stats.tasks_killed, 0u);
}

// --- Sparse Cholesky ------------------------------------------------------

struct CholeskyRun {
  apps::SparseMatrix matrix;
  RuntimeStats stats;
  SimTime duration = 0;
};

CholeskyRun run_cholesky(const apps::SparseMatrix& a, FaultConfig fault = {}) {
  Runtime rt(sim_mica(std::move(fault)));
  auto jm = apps::upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
  return {apps::download_matrix(rt, jm), rt.stats(), rt.sim_duration()};
}

TEST(ChaosCholesky, SurvivesCrashesByteIdentically) {
  const auto a = apps::make_spd(48, 0.15, 21);
  auto expect = a;
  apps::factor_serial(expect);

  FaultConfig quiet;
  quiet.enabled = true;
  const auto baseline = run_cholesky(a, quiet);
  ASSERT_EQ(baseline.matrix.cols, expect.cols);
  ASSERT_GT(baseline.duration, 0.0);

  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const auto run = run_cholesky(a, chaos_config(seed, baseline.duration));
    EXPECT_EQ(run.matrix.cols, expect.cols) << "seed=" << seed;
    EXPECT_EQ(run.stats.machine_crashes, 2u) << "seed=" << seed;
    EXPECT_EQ(run.stats.tasks_requeued, run.stats.tasks_killed);
  }
}

TEST(ChaosCholesky, ExplicitCrashScheduleAlsoRecovers) {
  const auto a = apps::make_spd(48, 0.15, 21);
  auto expect = a;
  apps::factor_serial(expect);

  FaultConfig quiet;
  quiet.enabled = true;
  const auto baseline = run_cholesky(a, quiet);

  FaultConfig f;
  f.enabled = true;
  f.crashes = {{2, 0.3 * baseline.duration}, {5, 0.6 * baseline.duration}};
  f.drop_probability = 0.02;
  const auto run = run_cholesky(a, f);
  EXPECT_EQ(run.matrix.cols, expect.cols);
  EXPECT_EQ(run.stats.machine_crashes, 2u);
  // Detection is heartbeat-based: a machine's last heartbeat predates its
  // crash by less than one interval, so each crash takes strictly more than
  // (miss_threshold - 1) intervals of silence to detect.
  EXPECT_GT(run.stats.detection_latency_total,
            2 * f.heartbeat_interval * (f.heartbeat_miss_threshold - 1));
}

// --- Recoverability limits ------------------------------------------------

TEST(ChaosLws, WithoutStableStorageRunsEndOrThrowUnrecoverable) {
  // With the snapshot policy off, a crash that takes an object's sole copy
  // makes the program unrecoverable — the run must either still produce the
  // serial result (nothing essential was lost) or refuse loudly; it must
  // never complete with wrong data.
  const auto wc = small_lws();
  const auto initial = apps::make_water(wc);
  auto expect = initial;
  apps::water_run_serial(wc, expect);

  FaultConfig quiet;
  quiet.enabled = true;
  const auto baseline = run_lws(wc, initial, quiet);

  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto f = chaos_config(seed, baseline.duration);
    f.stable_storage = false;
    try {
      const auto run = run_lws(wc, initial, f);
      EXPECT_EQ(run.pos, expect.pos) << "seed=" << seed;
      EXPECT_EQ(run.stats.objects_restored, 0u);
    } catch (const UnrecoverableError&) {
      SUCCEED();  // the documented limit of the failure model
    }
  }
}

TEST(ChaosConfig, FaultInjectionRequiresMessagePassing) {
  FaultConfig f;
  f.enabled = true;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::dash(4);  // shared memory: nothing to recover
  cfg.fault = f;
  EXPECT_THROW(Runtime rt(std::move(cfg)), ConfigError);
}

}  // namespace
}  // namespace jade
