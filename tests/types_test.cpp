// Unit tests for type descriptors, representation conversion and the wire
// format — the substrate for the paper's heterogeneous data-format
// conversion (Sections 5, 6.1).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "jade/types/type_desc.hpp"
#include "jade/types/wire.hpp"

namespace jade {
namespace {

TEST(TypeDescriptor, ScalarSizes) {
  EXPECT_EQ(scalar_size(ScalarKind::kInt8), 1u);
  EXPECT_EQ(scalar_size(ScalarKind::kUInt16), 2u);
  EXPECT_EQ(scalar_size(ScalarKind::kFloat32), 4u);
  EXPECT_EQ(scalar_size(ScalarKind::kFloat64), 8u);
  EXPECT_EQ(scalar_size(ScalarKind::kInt64), 8u);
}

TEST(TypeDescriptor, ArrayLayout) {
  auto d = TypeDescriptor::array_of<double>(10);
  EXPECT_EQ(d.byte_size(), 80u);
  EXPECT_EQ(d.scalar_count(), 10u);
  EXPECT_FALSE(d.order_invariant());
}

TEST(TypeDescriptor, RecordLayout) {
  TypeDescriptor d({{ScalarKind::kInt32, 2}, {ScalarKind::kFloat64, 3}});
  EXPECT_EQ(d.byte_size(), 8u + 24u);
  EXPECT_EQ(d.scalar_count(), 5u);
}

TEST(TypeDescriptor, ByteBlobIsOrderInvariant) {
  auto d = TypeDescriptor::bytes(100);
  EXPECT_TRUE(d.order_invariant());
  EXPECT_EQ(d.byte_size(), 100u);
}

TEST(TypeDescriptor, ToStringNamesFields) {
  TypeDescriptor d({{ScalarKind::kInt32, 2}, {ScalarKind::kFloat64, 3}});
  EXPECT_EQ(d.to_string(), "{i32x2, f64x3}");
}

TEST(Conversion, SwapReversesEveryScalar) {
  std::uint32_t values[2] = {0x01020304u, 0xa0b0c0d0u};
  auto d = TypeDescriptor::array_of<std::uint32_t>(2);
  swap_representation({reinterpret_cast<std::byte*>(values), 8}, d);
  EXPECT_EQ(values[0], 0x04030201u);
  EXPECT_EQ(values[1], 0xd0c0b0a0u);
}

TEST(Conversion, DoubleRoundTrips) {
  std::vector<double> values{3.14159, -2.5e30, 0.0, 1e-300};
  auto original = values;
  auto d = TypeDescriptor::array_of<double>(values.size());
  std::span<std::byte> bytes{reinterpret_cast<std::byte*>(values.data()),
                             d.byte_size()};
  const std::size_t n1 =
      convert_representation(bytes, d, Endian::kLittle, Endian::kBig);
  EXPECT_EQ(n1, values.size());
  // Representation changed (for non-palindromic patterns).
  EXPECT_NE(values[0], original[0]);
  const std::size_t n2 =
      convert_representation(bytes, d, Endian::kBig, Endian::kLittle);
  EXPECT_EQ(n2, values.size());
  EXPECT_EQ(values, original);
}

TEST(Conversion, SameOrderIsNoop) {
  std::vector<std::uint64_t> values{0x0102030405060708ull};
  auto d = TypeDescriptor::array_of<std::uint64_t>(1);
  std::span<std::byte> bytes{reinterpret_cast<std::byte*>(values.data()), 8};
  EXPECT_EQ(convert_representation(bytes, d, Endian::kBig, Endian::kBig), 0u);
  EXPECT_EQ(values[0], 0x0102030405060708ull);
}

TEST(Conversion, MixedRecordSwapsPerField) {
  // i16 pair then one u32: each scalar swaps within itself.
  struct Packed {
    std::uint16_t a;
    std::uint16_t b;
    std::uint32_t c;
  } p{0x0102, 0x0304, 0x0a0b0c0du};
  TypeDescriptor d({{ScalarKind::kUInt16, 2}, {ScalarKind::kUInt32, 1}});
  swap_representation({reinterpret_cast<std::byte*>(&p), 8}, d);
  EXPECT_EQ(p.a, 0x0201);
  EXPECT_EQ(p.b, 0x0403);
  EXPECT_EQ(p.c, 0x0d0c0b0au);
}

TEST(Conversion, SingleByteFieldsUntouched) {
  std::uint8_t buf[4] = {1, 2, 3, 4};
  auto d = TypeDescriptor::array(ScalarKind::kUInt8, 4);
  swap_representation({reinterpret_cast<std::byte*>(buf), 4}, d);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[3], 4);
}

TEST(Conversion, OrderInvariantSkipsWork) {
  std::uint8_t buf[4] = {1, 2, 3, 4};
  auto d = TypeDescriptor::bytes(4);
  EXPECT_EQ(convert_representation({reinterpret_cast<std::byte*>(buf), 4}, d,
                                   Endian::kLittle, Endian::kBig),
            0u);
}

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0102030405060708ull);
  w.put_i64(-42);
  w.put_f64(6.25);
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0102030405060708ull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 6.25);
  EXPECT_TRUE(r.done());
}

TEST(Wire, StringsAndBytes) {
  WireWriter w;
  w.put_string("hello jade");
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(blob);
  w.put_string("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello jade");
  EXPECT_EQ(r.get_bytes(), blob);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(Wire, CanonicalLittleEndianLayout) {
  WireWriter w;
  w.put_u32(0x01020304u);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<int>(b[0]), 0x04);
  EXPECT_EQ(static_cast<int>(b[3]), 0x01);
}

TEST(Wire, TruncationThrows) {
  WireWriter w;
  w.put_u16(7);
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_u16(), 7);
  EXPECT_THROW(r.get_u32(), InternalError);
}

TEST(Wire, EmptyStringAndBlobRoundTrip) {
  WireWriter w;
  w.put_string("");
  w.put_bytes({});
  w.put_string("");
  // Three u32 length prefixes and nothing else.
  EXPECT_EQ(w.size(), 12u);
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_bytes().empty());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.done());
}

TEST(Wire, LargeBlobRoundTripsThroughBulkPath) {
  // Big enough that the memcpy fast path and reserve() sizing matter.
  std::vector<std::byte> blob(1 << 16);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::byte>((i * 131 + 7) & 0xff);
  WireWriter w;
  w.reserve(4 + blob.size());
  w.put_bytes(blob);
  EXPECT_EQ(w.size(), 4 + blob.size());
  WireReader r(w.bytes());
  EXPECT_EQ(r.get_bytes(), blob);
  EXPECT_TRUE(r.done());
}

TEST(Wire, MaxSizeLengthPrefixIsTruncationNotOverflow) {
  // A corrupted length prefix claiming UINT32_MAX bytes must surface as a
  // clean truncation error, not wrap around or allocate 4 GiB.
  WireWriter w;
  w.put_u32(0xffffffffu);
  w.put_u8(1);  // far fewer than 2^32-1 payload bytes follow
  {
    WireReader r(w.bytes());
    EXPECT_THROW(r.get_bytes(), InternalError);
  }
  {
    WireReader r(w.bytes());
    EXPECT_THROW(r.get_string(), InternalError);
  }
}

TEST(Wire, MixedSequenceRoundTripsDeterministically) {
  // Property-style check: a seeded mix of every put_* op reads back
  // identically, and two independently built writers agree byte for byte.
  auto build = [] {
    WireWriter w;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;  // deterministic LCG stream
    for (int i = 0; i < 200; ++i) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      switch (x >> 61) {
        case 0: w.put_u8(static_cast<std::uint8_t>(x)); break;
        case 1: w.put_u16(static_cast<std::uint16_t>(x)); break;
        case 2: w.put_u32(static_cast<std::uint32_t>(x)); break;
        case 3: w.put_u64(x); break;
        case 4: w.put_i64(static_cast<std::int64_t>(x)); break;
        case 5: w.put_f64(static_cast<double>(x >> 12) * 1e-6); break;
        case 6: w.put_string(std::string(x % 40, 'a' + (x % 26))); break;
        default: {
          std::vector<std::byte> blob(x % 70);
          for (std::size_t j = 0; j < blob.size(); ++j)
            blob[j] = static_cast<std::byte>(j ^ (x & 0xff));
          w.put_bytes(blob);
        }
      }
    }
    return w;
  };
  const WireWriter a = build();
  const WireWriter b = build();
  EXPECT_EQ(a.bytes(), b.bytes());

  WireReader r(a.bytes());
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    switch (x >> 61) {
      case 0: EXPECT_EQ(r.get_u8(), static_cast<std::uint8_t>(x)); break;
      case 1: EXPECT_EQ(r.get_u16(), static_cast<std::uint16_t>(x)); break;
      case 2: EXPECT_EQ(r.get_u32(), static_cast<std::uint32_t>(x)); break;
      case 3: EXPECT_EQ(r.get_u64(), x); break;
      case 4: EXPECT_EQ(r.get_i64(), static_cast<std::int64_t>(x)); break;
      case 5:
        EXPECT_DOUBLE_EQ(r.get_f64(),
                         static_cast<double>(x >> 12) * 1e-6);
        break;
      case 6:
        EXPECT_EQ(r.get_string(), std::string(x % 40, 'a' + (x % 26)));
        break;
      default: {
        std::vector<std::byte> blob(x % 70);
        for (std::size_t j = 0; j < blob.size(); ++j)
          blob[j] = static_cast<std::byte>(j ^ (x & 0xff));
        EXPECT_EQ(r.get_bytes(), blob);
      }
    }
  }
  EXPECT_TRUE(r.done());
}

TEST(HostEndian, MatchesBuiltin) {
  const std::uint16_t probe = 0x0102;
  const auto first = *reinterpret_cast<const std::uint8_t*>(&probe);
  if (first == 0x02)
    EXPECT_EQ(host_endian(), Endian::kLittle);
  else
    EXPECT_EQ(host_endian(), Endian::kBig);
}

}  // namespace
}  // namespace jade
