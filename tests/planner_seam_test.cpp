// The Planner seam: golden-format tests of the explain renderers, golden
// locality-score tests over PlacementExplain, and the contract that every
// engine's placement decisions flow through the seam — ThreadEngine and
// ClusterEngine emit the same structured "sched.place" instants SimEngine
// always has (the issue's PlacementExplain fix).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "jade/apps/cholesky.hpp"
#include "jade/cluster/cluster_engine.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/model/model_planner.hpp"
#include "jade/model/planner.hpp"
#include "jade/obs/chrome_trace.hpp"

namespace jade {
namespace {

using model::format_placement_explain;
using model::format_task_select_explain;
using model::HeuristicPlanner;

ObjectInfo make_info(ObjectId id, std::size_t doubles) {
  return ObjectInfo{id, TypeDescriptor::array_of<double>(doubles),
                    "o" + std::to_string(id)};
}

/// The sched_test directory: 800 B on machine 0, 80 B on 1, 8 B on 2.
class SeamTest : public ::testing::Test {
 protected:
  SeamTest() : dir(3) {
    dir.add_object(make_info(1, 100), 0);
    dir.add_object(make_info(2, 10), 1);
    dir.add_object(make_info(3, 1), 2);
  }
  ObjectDirectory dir;
  HeuristicPlanner planner;
};

// --- golden explain-format strings -----------------------------------------
// The trace byte-compatibility contract (obs_trace_determinism_test) rides
// on these exact layouts; a formatting change must be deliberate.

TEST(ExplainFormat, PlacementGolden) {
  PlacementExplain e;
  e.chosen = 1;
  e.candidates = {{0, 800, 2}, {1, 80, 1}, {2, 0, 2}};
  EXPECT_EQ(format_placement_explain(e),
            "chosen=1 m0:bytes=800,free=2 m1:bytes=80,free=1 "
            "m2:bytes=0,free=2");
}

TEST(ExplainFormat, PlacementNoneQualifiedGolden) {
  PlacementExplain e;  // chosen stays -1, no candidates
  EXPECT_EQ(format_placement_explain(e), "chosen=-1");
}

TEST(ExplainFormat, TaskSelectGolden) {
  PlacementExplain e;
  e.chosen_index = 1;
  e.task_candidates = {{0, 8}, {1, 800}};
  const std::uint64_t ids[] = {41, 42};
  EXPECT_EQ(format_task_select_explain(e, 3, ids),
            "chosen=42 w3 t41:bytes=8 t42:bytes=800");
}

TEST(ExplainFormat, TaskSelectEmptyWindowGolden) {
  PlacementExplain e;  // chosen_index stays SIZE_MAX
  EXPECT_EQ(format_task_select_explain(e, 0, {}), "chosen=-1 w0");
}

// --- golden locality scores through the seam -------------------------------

TEST_F(SeamTest, PlaceTaskScoresResidentBytesPerCandidate) {
  const ObjectId objs[] = {1, 2};  // 800 B on m0, 80 B on m1
  const int free[] = {1, 1, 1};
  PlacementExplain e;
  const MachineId chosen =
      planner.place_task(dir, {objs, free, /*locality=*/true, /*creator=*/2},
                         &e);
  EXPECT_EQ(chosen, 0);
  EXPECT_EQ(format_placement_explain(e),
            "chosen=0 m0:bytes=800,free=1 m1:bytes=80,free=1 "
            "m2:bytes=0,free=1");
}

TEST_F(SeamTest, PlaceTaskExcludesBusyMachinesFromCandidates) {
  const ObjectId objs[] = {1};
  const int free[] = {0, 2, 1};  // m0 holds the bytes but has no context
  PlacementExplain e;
  const MachineId chosen =
      planner.place_task(dir, {objs, free, true, /*creator=*/1}, &e);
  EXPECT_EQ(chosen, 1);  // tie on bytes falls to the creator
  EXPECT_EQ(format_placement_explain(e),
            "chosen=1 m1:bytes=0,free=2 m2:bytes=0,free=1");
}

TEST_F(SeamTest, SelectTaskScoresWindowAgainstMachine) {
  const std::vector<std::vector<ObjectId>> lists = {{3}, {1}, {2}};
  PlacementExplain e;
  const std::size_t pick =
      planner.select_task(dir, {lists, /*machine=*/0, /*locality=*/true}, &e);
  EXPECT_EQ(pick, 1u);  // object 1's 800 B live on machine 0
  const std::uint64_t ids[] = {10, 11, 12};
  EXPECT_EQ(format_task_select_explain(e, 0, ids),
            "chosen=11 w0 t10:bytes=0 t11:bytes=800 t12:bytes=0");
}

TEST_F(SeamTest, ExplainClaimListsQueueDepths) {
  const int depths[] = {3, 0, 5};
  PlacementExplain e;
  planner.explain_claim(depths, /*chosen=*/1, &e);
  EXPECT_EQ(format_placement_explain(e),
            "chosen=1 m0:bytes=0,free=3 m1:bytes=0,free=0 "
            "m2:bytes=0,free=5");
}

// --- every engine narrates its placements through the seam -----------------

void run_cholesky(Runtime& rt) {
  const auto a = apps::paper_example_matrix();
  auto jm = apps::upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
  (void)apps::download_matrix(rt, jm);
}

/// All "sched.place" instants in the recorded stream, with their detail.
std::vector<obs::TraceEvent> placement_events(const Runtime& rt) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : rt.trace_events())
    if (e.cat == obs::Subsystem::kSched &&
        std::string(e.name) == "sched.place")
      out.push_back(e);
  return out;
}

TEST(PlannerSeamEngines, ThreadEngineEmitsStructuredPlacements) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 3;
  cfg.obs.trace = true;
  Runtime rt(cfg);
  run_cholesky(rt);
  const auto places = placement_events(rt);
  ASSERT_FALSE(places.empty());
  for (const obs::TraceEvent& e : places) {
    EXPECT_EQ(e.kind, obs::EventKind::kInstant);
    // Claim explains carry one candidate per live worker slot; the event
    // value is the candidate count and the detail names the chosen worker.
    EXPECT_GE(e.value, 1.0);
    EXPECT_EQ(e.detail.rfind("chosen=", 0), 0u) << e.detail;
    EXPECT_NE(e.detail.find(":bytes="), std::string::npos) << e.detail;
    EXPECT_EQ(e.detail.find("chosen=" + std::to_string(e.machine)), 0u)
        << "claiming worker must be the chosen candidate: " << e.detail;
  }
}

/// ClusterEngine cannot ship closures; the fanout body is registered at file
/// scope so forked workers know it (cluster_engine_test's idiom).
const int kSeamLeaf = cluster::BodyRegistry::instance().ensure(
    "seam.leaf", [](TaskContext& t, WireReader& r) {
      const auto src = cluster::get_ref<double>(r);
      const auto dst = cluster::get_ref<double>(r);
      double sum = 0;
      for (double v : t.read(src)) sum += v;
      t.write(dst)[0] = sum;
    });

TEST(PlannerSeamEngines, ClusterEngineEmitsStructuredPlacements) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kCluster;
  cfg.cluster_proc.workers = 2;
  cfg.cluster_proc.spares = 0;
  cfg.obs.trace = true;
  Runtime rt(cfg);
  const std::vector<double> init = {1.0, 2.0, 3.0};
  auto src = rt.alloc_init<double>(init, "src");
  std::vector<SharedRef<double>> out;
  for (int i = 0; i < 16; ++i)
    out.push_back(rt.alloc<double>(1, "out" + std::to_string(i)));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 16; ++i) {
      WireWriter args;
      cluster::put_ref(args, src);
      cluster::put_ref(args, out[static_cast<std::size_t>(i)]);
      cluster::spawn(ctx, kSeamLeaf, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(out[static_cast<std::size_t>(i)]);
      });
    }
  });
  for (const auto& o : out) EXPECT_EQ(rt.get(o)[0], 6.0);
  const auto places = placement_events(rt);
  ASSERT_FALSE(places.empty());
  for (const obs::TraceEvent& e : places) {
    EXPECT_EQ(e.kind, obs::EventKind::kInstant);
    EXPECT_EQ(e.detail.rfind("chosen=", 0), 0u) << e.detail;
    // Task-select explains name the worker and score the ready window.
    EXPECT_NE(e.detail.find(" w" + std::to_string(e.machine)),
              std::string::npos)
        << e.detail;
    EXPECT_NE(e.detail.find(":bytes="), std::string::npos) << e.detail;
  }
}

TEST(PlannerSeamEngines, UnfittedModelPlannerMatchesDefaultByteForByte) {
  // ModelPlanner inherits the heuristic per-decision placements and its
  // unfitted plan_policy is the identity, so swapping it in must not change
  // a byte of a deterministic SimEngine export.
  auto config = [](std::shared_ptr<const model::Planner> planner) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ipsc860(4);
    cfg.obs.trace = true;
    cfg.planner = std::move(planner);
    return cfg;
  };
  auto export_trace = [](Runtime& rt) {
    std::ostringstream os;
    rt.write_chrome_trace(os);
    return os.str();
  };
  std::string with_default, with_model;
  {
    Runtime rt(config(nullptr));
    run_cholesky(rt);
    with_default = export_trace(rt);
  }
  {
    Runtime rt(config(std::make_shared<model::ModelPlanner>(
        model::CostModel{}, model::WorkloadFeatures{})));
    run_cholesky(rt);
    with_model = export_trace(rt);
  }
  EXPECT_FALSE(with_default.empty());
  EXPECT_EQ(with_default, with_model);
}

}  // namespace
}  // namespace jade
