// Wire-format hardening tests for the cluster protocol (frame.hpp):
// round-trip properties for every message type, frame-header validation,
// and the guarantee that truncated or garbage bytes surface as
// ProtocolError — never UB, never InternalError leaking across the
// process boundary.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "jade/cluster/frame.hpp"
#include "jade/support/error.hpp"

namespace jade::cluster {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

// --- frame header -----------------------------------------------------------

TEST(FrameHeader, RoundTrip) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  const std::vector<std::byte> buf =
      encode_frame(FrameType::kDispatch, payload);
  ASSERT_EQ(buf.size(), kFrameHeaderBytes + payload.size());
  FrameType type{};
  const std::uint32_t len = decode_frame_header(buf.data(), type);
  EXPECT_EQ(type, FrameType::kDispatch);
  EXPECT_EQ(len, payload.size());
  EXPECT_EQ(0, std::memcmp(buf.data() + kFrameHeaderBytes, payload.data(),
                           payload.size()));
}

TEST(FrameHeader, EveryTypeSurvives) {
  for (std::uint8_t t = 1; t <= kMaxFrameType; ++t) {
    const auto buf = encode_frame(static_cast<FrameType>(t), {});
    FrameType type{};
    EXPECT_EQ(decode_frame_header(buf.data(), type), 0u);
    EXPECT_EQ(static_cast<std::uint8_t>(type), t);
  }
}

TEST(FrameHeader, BadMagicRejected) {
  auto buf = encode_frame(FrameType::kHello, {});
  buf[0] = std::byte{0xFF};
  FrameType type{};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
}

TEST(FrameHeader, BadVersionRejected) {
  auto buf = encode_frame(FrameType::kHello, {});
  buf[4] = std::byte{99};
  FrameType type{};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
}

TEST(FrameHeader, BadTypeRejected) {
  auto buf = encode_frame(FrameType::kHello, {});
  FrameType type{};
  buf[5] = std::byte{0};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
  buf[5] = std::byte{kMaxFrameType + 1};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
}

TEST(FrameHeader, NonzeroReservedRejected) {
  auto buf = encode_frame(FrameType::kHello, {});
  buf[6] = std::byte{1};
  FrameType type{};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
}

TEST(FrameHeader, AbsurdLengthRejected) {
  auto buf = encode_frame(FrameType::kHello, {});
  // Length field is at offset 8, little-endian: 0xFFFFFFFF > kMaxPayload.
  buf[8] = buf[9] = buf[10] = buf[11] = std::byte{0xFF};
  FrameType type{};
  EXPECT_THROW(decode_frame_header(buf.data(), type), ProtocolError);
}

// --- message round-trips ----------------------------------------------------

template <typename M>
M round_trip(const M& msg) {
  return unpack<M>(pack(msg));
}

TEST(ClusterMessages, Hello) {
  HelloMsg m;
  m.pid = 123456789;
  EXPECT_EQ(round_trip(m).pid, m.pid);
}

TEST(ClusterMessages, Activate) {
  ActivateMsg m;
  m.machine = 17;
  m.machines = 64;
  m.heartbeat_interval = 0.0125;
  const ActivateMsg d = round_trip(m);
  EXPECT_EQ(d.machine, m.machine);
  EXPECT_EQ(d.machines, m.machines);
  EXPECT_DOUBLE_EQ(d.heartbeat_interval, m.heartbeat_interval);
}

TEST(ClusterMessages, DispatchWithPayloads) {
  DispatchMsg m;
  m.task = 42;
  m.body = 7;
  m.name = "factor-column";
  m.args = bytes_of({9, 8, 7});
  ObjectShip with_payload;
  with_payload.obj = 3;
  with_payload.immediate = 3;  // rd|wr
  with_payload.deferred = 4;   // df_cm
  with_payload.bytes = 4;
  with_payload.has_payload = true;
  with_payload.payload = bytes_of({1, 2, 3, 4});
  ObjectShip elided;
  elided.obj = 9;
  elided.immediate = 1;
  elided.bytes = 1024;  // payload elided: worker copy is current
  m.objects = {with_payload, elided};

  const DispatchMsg d = round_trip(m);
  EXPECT_EQ(d.task, m.task);
  EXPECT_EQ(d.body, m.body);
  EXPECT_EQ(d.name, m.name);
  EXPECT_EQ(d.args, m.args);
  ASSERT_EQ(d.objects.size(), 2u);
  EXPECT_EQ(d.objects[0].obj, 3u);
  EXPECT_EQ(d.objects[0].immediate, 3);
  EXPECT_EQ(d.objects[0].deferred, 4);
  EXPECT_TRUE(d.objects[0].has_payload);
  EXPECT_EQ(d.objects[0].payload, with_payload.payload);
  EXPECT_EQ(d.objects[1].obj, 9u);
  EXPECT_FALSE(d.objects[1].has_payload);
  EXPECT_EQ(d.objects[1].bytes, 1024u);
}

TEST(ClusterMessages, Spawn) {
  SpawnMsg m;
  m.parent = 5;
  m.body = 2;
  m.name = "child";
  m.placement = 3;
  m.args = bytes_of({0xAA, 0xBB});
  m.requests = {{11, 1, 2, 0}, {12, 0, 4, 0}};
  const SpawnMsg d = round_trip(m);
  EXPECT_EQ(d.parent, m.parent);
  EXPECT_EQ(d.body, m.body);
  EXPECT_EQ(d.name, m.name);
  EXPECT_EQ(d.placement, m.placement);
  EXPECT_EQ(d.args, m.args);
  ASSERT_EQ(d.requests.size(), 2u);
  EXPECT_EQ(d.requests[0].obj, 11u);
  EXPECT_EQ(d.requests[0].add_immediate, 1);
  EXPECT_EQ(d.requests[0].add_deferred, 2);
  EXPECT_EQ(d.requests[1].add_deferred, 4);
}

TEST(ClusterMessages, WithContAndAck) {
  WithContMsg m;
  m.task = 77;
  WithContItem retire;
  retire.req = {4, 0, 0, 2};  // no_wr
  retire.has_payload = true;
  retire.payload = bytes_of({5, 6});
  WithContItem convert;
  convert.req = {8, 2, 0, 0};  // wr (conversion)
  m.items = {retire, convert};
  const WithContMsg d = round_trip(m);
  EXPECT_EQ(d.task, 77u);
  ASSERT_EQ(d.items.size(), 2u);
  EXPECT_EQ(d.items[0].req.remove, 2);
  EXPECT_TRUE(d.items[0].has_payload);
  EXPECT_EQ(d.items[0].payload, retire.payload);
  EXPECT_EQ(d.items[1].req.add_immediate, 2);
  EXPECT_FALSE(d.items[1].has_payload);

  WithContAckMsg ack;
  ack.task = 77;
  ack.ok = false;
  ack.error_code = ErrorCode::kSpecUpdate;
  ack.error = "cannot re-add removed right";
  const WithContAckMsg da = round_trip(ack);
  EXPECT_FALSE(da.ok);
  EXPECT_EQ(da.error_code, ErrorCode::kSpecUpdate);
  EXPECT_EQ(da.error, ack.error);
}

TEST(ClusterMessages, AcquireAndAck) {
  AcquireMsg m;
  m.task = 13;
  m.obj = 21;
  m.mode = 4;  // commute
  const AcquireMsg d = round_trip(m);
  EXPECT_EQ(d.task, 13u);
  EXPECT_EQ(d.obj, 21u);
  EXPECT_EQ(d.mode, 4);

  AcquireAckMsg ack;
  ack.task = 13;
  ack.obj = 21;
  ack.ok = true;
  ack.has_payload = true;
  ack.payload = bytes_of({1, 1, 2, 3, 5, 8});
  const AcquireAckMsg da = round_trip(ack);
  EXPECT_TRUE(da.ok);
  EXPECT_TRUE(da.has_payload);
  EXPECT_EQ(da.payload, ack.payload);
}

TEST(ClusterMessages, Done) {
  DoneMsg m;
  m.task = 99;
  m.charged = 2.5;
  m.writes.push_back({31, bytes_of({1})});
  m.writes.push_back({32, bytes_of({2, 3})});
  const DoneMsg d = round_trip(m);
  EXPECT_EQ(d.task, 99u);
  EXPECT_DOUBLE_EQ(d.charged, 2.5);
  ASSERT_EQ(d.writes.size(), 2u);
  EXPECT_EQ(d.writes[0].obj, 31u);
  EXPECT_EQ(d.writes[1].payload, bytes_of({2, 3}));
}

TEST(ClusterMessages, TaskErrorHeartbeatCoherence) {
  TaskErrorMsg e;
  e.task = 6;
  e.code = ErrorCode::kUndeclaredAccess;
  e.what = "task accessed object 9 without declaring it";
  const TaskErrorMsg de = round_trip(e);
  EXPECT_EQ(de.task, 6u);
  EXPECT_EQ(de.code, ErrorCode::kUndeclaredAccess);
  EXPECT_EQ(de.what, e.what);

  HeartbeatMsg hb;
  hb.machine = 3;
  hb.seq = 12345;
  const HeartbeatMsg dhb = round_trip(hb);
  EXPECT_EQ(dhb.machine, 3);
  EXPECT_EQ(dhb.seq, 12345u);

  CoherenceMsg c;
  c.from = 1;
  c.to = 2;
  c.bytes = 64;
  const CoherenceMsg dc = round_trip(c);
  EXPECT_EQ(dc.from, 1);
  EXPECT_EQ(dc.to, 2);
  EXPECT_EQ(dc.bytes, 64u);
}

TEST(ClusterMessages, ObjFetchObjDataShutdown) {
  ObjFetchMsg f;
  f.obj = 55;
  EXPECT_EQ(round_trip(f).obj, 55u);

  ObjDataMsg o;
  o.obj = 55;
  o.payload = bytes_of({4, 5, 6});
  const ObjDataMsg od = round_trip(o);
  EXPECT_EQ(od.obj, 55u);
  EXPECT_EQ(od.payload, o.payload);

  EXPECT_NO_THROW(round_trip(ShutdownMsg{}));
}

// --- hostile input ----------------------------------------------------------

TEST(ClusterMessages, TruncationIsProtocolError) {
  // Every prefix of a valid encoding must decode cleanly to ProtocolError:
  // a worker can die mid-write and the bytes may still arrive framed.
  DispatchMsg m;
  m.task = 1;
  m.body = 0;
  m.name = "t";
  m.args = bytes_of({1, 2, 3});
  ObjectShip s;
  s.obj = 2;
  s.immediate = 3;
  s.bytes = 8;
  s.has_payload = true;
  s.payload = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  m.objects = {s};
  const std::vector<std::byte> full = pack(m);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::byte> prefix(full.begin(),
                                        full.begin() + static_cast<long>(cut));
    EXPECT_THROW(unpack<DispatchMsg>(prefix), ProtocolError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(ClusterMessages, TrailingBytesAreProtocolError) {
  std::vector<std::byte> buf = pack(HeartbeatMsg{2, 9});
  buf.push_back(std::byte{0});
  EXPECT_THROW(unpack<HeartbeatMsg>(buf), ProtocolError);
}

TEST(ClusterMessages, RandomGarbageNeverEscapesProtocolError) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> junk(rng() % 64);
    for (auto& b : junk) b = static_cast<std::byte>(rng() & 0xFF);
    try {
      (void)unpack<WithContMsg>(junk);  // may succeed by chance; fine
    } catch (const ProtocolError&) {
      // expected failure mode
    }
    // Any other exception type escapes the try and fails the test.
  }
}

TEST(ClusterMessages, HugeLengthPrefixRejectedWithoutAllocating) {
  // A garbage count field must not trigger a giant reserve: decode hits
  // truncation before materializing elements.
  WireWriter w;
  w.put_u64(1);                // task
  w.put_u32(0xFFFFFFFF);       // item count: absurd
  const std::vector<std::byte> buf = w.take();
  EXPECT_THROW(unpack<WithContMsg>(buf), ProtocolError);
}

// --- error taxonomy ---------------------------------------------------------

TEST(ClusterErrors, ClassifyAndRethrowAreInverse) {
  const auto check = [](const std::exception& e, ErrorCode expect) {
    const ErrorCode code = classify_error(e);
    EXPECT_EQ(code, expect);
    try {
      rethrow_error(code, e.what());
      FAIL() << "rethrow_error returned";
    } catch (const std::exception& back) {
      EXPECT_EQ(classify_error(back), expect);
      EXPECT_STREQ(back.what(), e.what());
    }
  };
  check(UndeclaredAccessError("u"), ErrorCode::kUndeclaredAccess);
  check(SpecUpdateError("s"), ErrorCode::kSpecUpdate);
  check(HierarchyViolationError("h"), ErrorCode::kHierarchy);
  check(TenantIsolationError("t"), ErrorCode::kTenantIsolation);
  check(ConfigError("c"), ErrorCode::kConfig);
  check(UnrecoverableError("r"), ErrorCode::kUnrecoverable);
  check(ProtocolError("p"), ErrorCode::kProtocol);
  check(InternalError("i"), ErrorCode::kInternal);
  check(std::runtime_error("foreign"), ErrorCode::kGeneric);
}

}  // namespace
}  // namespace jade::cluster
