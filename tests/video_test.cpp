// Tests of the HRV video-pipeline application (paper Section 7.2).
#include <gtest/gtest.h>

#include "jade/apps/video.hpp"
#include "jade/mach/presets.hpp"

namespace jade::apps {
namespace {

VideoConfig small_config() {
  VideoConfig c;
  c.frames = 12;
  c.width = 24;
  c.height = 16;
  return c;
}

TEST(VideoSerial, DeterministicChecksums) {
  const auto a = video_serial(small_config());
  const auto b = video_serial(small_config());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 12u);
  // Frames differ from each other.
  EXPECT_NE(a[0], a[1]);
}

TEST(JadeVideo, HrvPipelineMatchesSerial) {
  const auto c = small_config();
  const auto expect = video_serial(c);
  for (int accelerators : {1, 2, 3}) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::hrv(accelerators);
    Runtime rt(std::move(cfg));
    auto v = upload_video(rt, c);
    rt.run([&](TaskContext& ctx) { video_jade(ctx, v, accelerators); });
    EXPECT_EQ(download_video(rt, v), expect) << accelerators;
    // SPARC (big-endian) -> i860 (little-endian) frame transfers convert
    // every pixel.
    EXPECT_GT(rt.stats().scalars_converted, 0u);
    EXPECT_EQ(rt.stats().tasks_created,
              static_cast<std::uint64_t>(2 * c.frames));
  }
}

TEST(JadeVideo, WorksOnGenericEnginesToo) {
  const auto c = small_config();
  const auto expect = video_serial(c);
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 3;
  Runtime rt(std::move(cfg));
  auto v = upload_video(rt, c);
  rt.run([&](TaskContext& ctx) { video_jade(ctx, v, 2); });
  EXPECT_EQ(download_video(rt, v), expect);
}

TEST(JadeVideo, MoreAcceleratorsIncreaseThroughput) {
  auto duration = [](int accelerators) {
    VideoConfig c;
    c.frames = 24;
    c.width = 32;
    c.height = 24;
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::hrv(accelerators);
    Runtime rt(std::move(cfg));
    auto v = upload_video(rt, c);
    rt.run([&](TaskContext& ctx) { video_jade(ctx, v, accelerators); });
    return rt.sim_duration();
  };
  // Transform work dominates capture, so accelerators are the bottleneck
  // until capture serialization takes over.
  EXPECT_LT(duration(3), 0.7 * duration(1));
}

TEST(JadeVideo, CaptureTasksStayOnFrameSource) {
  const auto c = small_config();
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::hrv(2);
  Runtime rt(std::move(cfg));
  auto v = upload_video(rt, c);
  // The camera-order assertion inside the capture bodies fails if any
  // capture executes out of order or off machine 0.
  EXPECT_NO_THROW(
      rt.run([&](TaskContext& ctx) { video_jade(ctx, v, 2); }));
}

}  // namespace
}  // namespace jade::apps
