// Tests for the mini Jade language front end: lexer, parser, interpreter
// basics, and the Jade constructs over real tasks.
#include <gtest/gtest.h>

#include "jade/lang/interp.hpp"
#include "jade/lang/parser.hpp"
#include "jade/mach/presets.hpp"

namespace jade::lang {
namespace {

// --- lexer -------------------------------------------------------------------

TEST(LangLexer, TokenKinds) {
  const auto toks = lex("var x = 1.5; // comment\nx = x + 2e3;");
  ASSERT_GE(toks.size(), 10u);
  EXPECT_EQ(toks[0].kind, Tok::kVar);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[1].text, "x");
  EXPECT_EQ(toks[2].kind, Tok::kAssign);
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_DOUBLE_EQ(toks[3].number, 1.5);
  EXPECT_EQ(toks[4].kind, Tok::kSemi);
  // comment skipped; next is 'x' on line 2
  EXPECT_EQ(toks[5].text, "x");
  EXPECT_EQ(toks[5].line, 2);
  EXPECT_DOUBLE_EQ(toks[9].number, 2000.0);
}

TEST(LangLexer, KeywordsAndOperators) {
  const auto toks = lex("withonly do with cont for if else while <= >= == != && ||");
  EXPECT_EQ(toks[0].kind, Tok::kWithonly);
  EXPECT_EQ(toks[1].kind, Tok::kDo);
  EXPECT_EQ(toks[2].kind, Tok::kWith);
  EXPECT_EQ(toks[3].kind, Tok::kCont);
  EXPECT_EQ(toks[8].kind, Tok::kLe);
  EXPECT_EQ(toks[9].kind, Tok::kGe);
  EXPECT_EQ(toks[10].kind, Tok::kEq);
  EXPECT_EQ(toks[11].kind, Tok::kNe);
  EXPECT_EQ(toks[12].kind, Tok::kAndAnd);
  EXPECT_EQ(toks[13].kind, Tok::kOrOr);
}

TEST(LangLexer, BadCharacterReported) {
  try {
    lex("var x = 1;\nvar y = #;");
    FAIL();
  } catch (const LangError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// --- parser ------------------------------------------------------------------

TEST(LangParser, StatementShapes) {
  const Program p = parse(R"(
    var i = 0;
    for (i = 0; i < 10; i = i + 1) { x[0][i] = i * 2; }
    if (i >= 10) { i = 0; } else { i = 1; }
    while (i < 3) i = i + 1;
  )");
  ASSERT_EQ(p.statements.size(), 4u);
  EXPECT_EQ(p.statements[0]->kind, Stmt::Kind::kVarDecl);
  EXPECT_EQ(p.statements[1]->kind, Stmt::Kind::kFor);
  EXPECT_EQ(p.statements[2]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(p.statements[3]->kind, Stmt::Kind::kWhile);
}

TEST(LangParser, WithonlyShape) {
  const Program p = parse(R"(
    withonly { rd_wr(c[i]); rd(r); } do (i) {
      charge(10);
      c[i][0] = sqrt(c[i][0]);
    }
  )");
  ASSERT_EQ(p.statements.size(), 1u);
  const Stmt& s = *p.statements[0];
  EXPECT_EQ(s.kind, Stmt::Kind::kWithonly);
  ASSERT_NE(s.spec, nullptr);
  EXPECT_EQ(s.spec->body.size(), 2u);
  ASSERT_EQ(s.params.size(), 1u);
  EXPECT_EQ(s.params[0], "i");
  EXPECT_EQ(s.then_branch->kind, Stmt::Kind::kBlock);
}

TEST(LangParser, SyntaxErrorsCarryLines) {
  try {
    parse("var x = ;");
    FAIL();
  } catch (const LangError& e) {
    EXPECT_EQ(e.line(), 1);
  }
  EXPECT_THROW(parse("withonly { rd(x); } (i) {}"), LangError);  // missing do
  EXPECT_THROW(parse("for (var i = 0; i < 2) {}"), LangError);
}

TEST(LangParser, Precedence) {
  // 1 + 2 * 3 < 10 && 4 == 4  parses and evaluates as expected.
  Runtime rt;
  Environment env;
  auto out = rt.alloc<double>(1, "out");
  env.bind("out", out);
  run_program(rt, parse("out[0] = (1 + 2 * 3 < 10) && (4 == 4);"), env);
  EXPECT_DOUBLE_EQ(rt.get(out)[0], 1.0);
}

// --- interpreter -------------------------------------------------------------

double run_scalar(const std::string& body) {
  Runtime rt;
  Environment env;
  auto out = rt.alloc<double>(1, "out");
  env.bind("out", out);
  run_program(rt, parse(body), env);
  return rt.get(out)[0];
}

TEST(LangInterp, ArithmeticAndControlFlow) {
  EXPECT_DOUBLE_EQ(run_scalar("out[0] = 2 + 3 * 4;"), 14.0);
  EXPECT_DOUBLE_EQ(run_scalar("out[0] = (2 + 3) * 4;"), 20.0);
  EXPECT_DOUBLE_EQ(run_scalar("out[0] = sqrt(81);"), 9.0);
  EXPECT_DOUBLE_EQ(run_scalar(R"(
    var acc = 0;
    for (var i = 1; i <= 10; i = i + 1) acc = acc + i;
    out[0] = acc;
  )"),
                   55.0);
  EXPECT_DOUBLE_EQ(run_scalar(R"(
    var i = 7;
    if (i % 2 == 1) out[0] = 1; else out[0] = 2;
  )"),
                   1.0);
  EXPECT_DOUBLE_EQ(run_scalar(R"(
    var x = 1;
    while (x < 100) x = x * 3;
    out[0] = x;
  )"),
                   243.0);
}

TEST(LangInterp, ScopingShadowsAndRestores) {
  EXPECT_DOUBLE_EQ(run_scalar(R"(
    var x = 1;
    {
      var x = 2;
      x = x + 1;
    }
    out[0] = x;
  )"),
                   1.0);
}

TEST(LangInterp, BuiltinsAndLen) {
  Runtime rt;
  Environment env;
  auto out = rt.alloc<double>(1, "out");
  auto data = rt.alloc<double>(7, "data");
  env.bind("out", out);
  env.bind("data", data);
  run_program(rt, parse("out[0] = len(data) + min(2, 9) + max(2, 9) + "
                        "abs(0 - 4) + floor(2.9);"),
              env);
  EXPECT_DOUBLE_EQ(rt.get(out)[0], 7 + 2 + 9 + 4 + 2);
}

TEST(LangInterp, HostScalarsVisible) {
  Runtime rt;
  Environment env;
  auto out = rt.alloc<double>(1, "out");
  env.bind("out", out);
  env.bind_scalar("n", 41.0);
  run_program(rt, parse("out[0] = n + 1;"), env);
  EXPECT_DOUBLE_EQ(rt.get(out)[0], 42.0);
}

TEST(LangInterp, ErrorsSurfaceWithLines) {
  auto expect_lang_error = [](const std::string& src) {
    Runtime rt;  // a Runtime supports one run()
    Environment env;
    env.bind("out", rt.alloc<double>(2, "out"));
    EXPECT_THROW(run_program(rt, parse(src), env), LangError) << src;
  };
  expect_lang_error("out[0] = nope;");
  expect_lang_error("out[0][1] = 1;");
  expect_lang_error("out[9] = 1;");
  expect_lang_error("rd(out);");  // access statement outside a spec
}

// --- Jade constructs ---------------------------------------------------------

RuntimeConfig config_for(EngineKind kind) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = 3;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(3);
  return cfg;
}

class LangTaskTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(LangTaskTest, TasksRunAndSynchronize) {
  Runtime rt(config_for(GetParam()));
  Environment env;
  std::vector<SharedRef<double>> cells;
  for (int i = 0; i < 4; ++i)
    cells.push_back(rt.alloc<double>(2, "cell" + std::to_string(i)));
  env.bind("a", cells);
  run_program(rt, parse(R"(
    // independent writers, then a dependent chain on a[0]
    for (var i = 0; i < 4; i = i + 1) {
      withonly { rd_wr(a[i]); } do (i) {
        charge(100);
        a[i][0] = i * 10;
        a[i][1] = i;
      }
    }
    for (var k = 0; k < 5; k = k + 1) {
      withonly { rd_wr(a[0]); } do (k) {
        a[0][0] = a[0][0] * 2 + k;
      }
    }
  )"),
              env);
  // serial: a0 = 0; then k-chain: x = 2x + k
  double x = 0;
  for (int k = 0; k < 5; ++k) x = 2 * x + k;
  EXPECT_DOUBLE_EQ(rt.get(cells[0])[0], x);
  EXPECT_DOUBLE_EQ(rt.get(cells[3])[0], 30.0);
  EXPECT_EQ(rt.stats().tasks_created, 9u);
}

TEST_P(LangTaskTest, UndeclaredAccessCaughtByRuntime) {
  Runtime rt(config_for(GetParam()));
  Environment env;
  auto a = rt.alloc<double>(1, "a");
  auto b = rt.alloc<double>(1, "b");
  env.bind("a", a);
  env.bind("b", b);
  EXPECT_THROW(run_program(rt, parse(R"(
                 withonly { rd_wr(a); } do () { b[0] = 1; }
               )"),
                           env),
               UndeclaredAccessError);
}

TEST_P(LangTaskTest, DynamicSpecLoopAndWithCont) {
  // The Section 4.2 pipeline, in the scripting language: deferred reads
  // converted one by one.
  Runtime rt(config_for(GetParam()));
  Environment env;
  std::vector<SharedRef<double>> cols;
  for (int i = 0; i < 6; ++i)
    cols.push_back(rt.alloc<double>(1, "col" + std::to_string(i)));
  auto sum = rt.alloc<double>(1, "sum");
  env.bind("c", cols);
  env.bind("sum", sum);
  env.bind_scalar("n", 6);
  run_program(rt, parse(R"(
    for (var i = 0; i < n; i = i + 1) {
      withonly { rd_wr(c[i]); } do (i) {
        charge(50);
        c[i][0] = (i + 1) * (i + 1);
      }
    }
    withonly {
      rd_wr(sum);
      for (var i = 0; i < n; i = i + 1) df_rd(c[i]);
    } do () {
      for (var j = 0; j < n; j = j + 1) {
        with { rd(c[j]); } cont;
        sum[0] = sum[0] + c[j][0];
        with { no_rd(c[j]); } cont;
      }
    }
  )"),
              env);
  EXPECT_DOUBLE_EQ(rt.get(sum)[0], 1 + 4 + 9 + 16 + 25 + 36);
}

TEST_P(LangTaskTest, NestedTasksAndParentReacquire) {
  Runtime rt(config_for(GetParam()));
  Environment env;
  auto v = rt.alloc<double>(1, "v");
  env.bind("v", v);
  run_program(rt, parse(R"(
    withonly { rd_wr(v); } do () {
      withonly { rd_wr(v); } do () { v[0] = 5; }
      v[0] = v[0] * 10 + 1;
    }
  )"),
              env);
  EXPECT_DOUBLE_EQ(rt.get(v)[0], 51.0);
}

TEST_P(LangTaskTest, CommutingUpdates) {
  Runtime rt(config_for(GetParam()));
  Environment env;
  auto acc = rt.alloc<double>(1, "acc");
  env.bind("acc", acc);
  run_program(rt, parse(R"(
    for (var i = 1; i <= 12; i = i + 1) {
      withonly { cm(acc); } do (i) { acc[0] = acc[0] + i; }
    }
  )"),
              env);
  EXPECT_DOUBLE_EQ(rt.get(acc)[0], 78.0);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, LangTaskTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade::lang
