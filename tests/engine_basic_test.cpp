// Behavioral tests run identically against all three engines — the paper's
// portability property: "Programs written in Jade run on all of these
// platforms without modification."
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

class EngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  Runtime make_runtime(int machines = 4) {
    return Runtime(config_for(GetParam(), machines));
  }
};

TEST_P(EngineTest, SingleTaskWritesObject) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(8, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   auto out = t.read_write(v);
                   for (std::size_t i = 0; i < out.size(); ++i)
                     out[i] = static_cast<double>(i) * 1.5;
                 });
  });
  const auto result = rt.get(v);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(result[i], 1.5 * static_cast<double>(i));
}

TEST_P(EngineTest, DependentChainPreservesSerialOrder) {
  Runtime rt(config_for(GetParam()));
  // Unsigned: 50 triplings wrap, which is well-defined and still
  // order-sensitive.
  auto v = rt.alloc<std::uint64_t>(1, "counter");
  constexpr int kSteps = 50;
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kSteps; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [v, i](TaskContext& t) {
                     auto c = t.read_write(v);
                     // Order-sensitive update: c = c * 3 + i.
                     c[0] = c[0] * 3 + i;
                   });
    }
  });
  std::uint64_t expected = 0;
  for (int i = 0; i < kSteps; ++i) expected = expected * 3 + i;
  EXPECT_EQ(rt.get(v)[0], expected);
}

TEST_P(EngineTest, IndependentTasksAllExecute) {
  Runtime rt(config_for(GetParam()));
  constexpr int kTasks = 32;
  std::vector<SharedRef<int>> objs;
  for (int i = 0; i < kTasks; ++i)
    objs.push_back(rt.alloc<int>(4, "o" + std::to_string(i)));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kTasks; ++i) {
      auto o = objs[i];
      ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                   [o, i](TaskContext& t) {
                     auto s = t.write(o);
                     for (auto& x : s) x = i;
                   });
    }
  });
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(rt.get(objs[i])[0], i);
  EXPECT_EQ(rt.stats().tasks_created, static_cast<std::uint64_t>(kTasks));
}

TEST_P(EngineTest, ProducerConsumerThroughSharedObject) {
  Runtime rt(config_for(GetParam()));
  auto src = rt.alloc<double>(16, "src");
  auto dst = rt.alloc<double>(1, "dst");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.wr(src); },
                 [src](TaskContext& t) {
                   auto s = t.write(src);
                   for (std::size_t i = 0; i < s.size(); ++i)
                     s[i] = static_cast<double>(i + 1);
                 });
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd(src);
          d.wr(dst);
        },
        [src, dst](TaskContext& t) {
          auto in = t.read(src);
          auto out = t.write(dst);
          out[0] = std::accumulate(in.begin(), in.end(), 0.0);
        });
  });
  EXPECT_DOUBLE_EQ(rt.get(dst)[0], 16.0 * 17.0 / 2.0);
}

TEST_P(EngineTest, FanOutFanIn) {
  Runtime rt(config_for(GetParam()));
  constexpr int kWorkers = 8;
  auto input = rt.alloc<double>(kWorkers, "input");
  std::vector<SharedRef<double>> partials;
  for (int i = 0; i < kWorkers; ++i)
    partials.push_back(rt.alloc<double>(1, "p" + std::to_string(i)));
  auto total = rt.alloc<double>(1, "total");

  std::vector<double> init(kWorkers);
  for (int i = 0; i < kWorkers; ++i) init[i] = i + 1;
  rt.put<double>(input, init);

  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kWorkers; ++i) {
      auto p = partials[i];
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd(input);
            d.wr(p);
          },
          [input, p, i](TaskContext& t) {
            auto in = t.read(input);
            t.write(p)[0] = in[i] * in[i];
          });
    }
    ctx.withonly(
        [&](AccessDecl& d) {
          for (auto& p : partials) d.rd(p);
          d.wr(total);
        },
        [partials, total](TaskContext& t) {
          double sum = 0;
          for (auto& p : partials) sum += t.read(p)[0];
          t.write(total)[0] = sum;
        });
  });
  double expect = 0;
  for (int i = 1; i <= kWorkers; ++i) expect += i * i;
  EXPECT_DOUBLE_EQ(rt.get(total)[0], expect);
}

TEST_P(EngineTest, HierarchicalTasksComposeSerially) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<std::int64_t>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   // Child writes 5 at the creation point (serially before
                   // the parent's subsequent update).
                   t.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                              [v](TaskContext& c) {
                                c.read_write(v)[0] = 5;
                              });
                   auto h = t.read_write(v);  // waits for the child
                   h[0] = h[0] * 10 + 1;
                 });
  });
  EXPECT_EQ(rt.get(v)[0], 51);
}

TEST_P(EngineTest, CommutingUpdatesAccumulate) {
  Runtime rt(config_for(GetParam()));
  auto acc = rt.alloc<double>(1, "acc");
  constexpr int kTasks = 20;
  rt.run([&](TaskContext& ctx) {
    for (int i = 1; i <= kTasks; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.cm(acc); },
                   [acc, i](TaskContext& t) { t.commute(acc)[0] += i; });
    }
  });
  EXPECT_DOUBLE_EQ(rt.get(acc)[0], kTasks * (kTasks + 1) / 2.0);
}

TEST_P(EngineTest, UndeclaredAccessSurfacesFromRun) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.rd(v); },
                              [v](TaskContext& t) {
                                t.write(v)[0] = 1.0;  // only rd declared
                              });
               }),
               UndeclaredAccessError);
}

TEST_P(EngineTest, HierarchyViolationSurfacesFromRun) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.rd(v); },
                              [v](TaskContext& t) {
                                t.withonly([&](AccessDecl& d) { d.wr(v); },
                                           [](TaskContext&) {});
                              });
               }),
               HierarchyViolationError);
}

TEST_P(EngineTest, RootMayInitializeUncontestedObjects) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(4, "v");
  rt.run([&](TaskContext& ctx) {
    auto s = ctx.write(v);  // no task declares v yet
    for (auto& x : s) x = 7.0;
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) { t.read_write(v)[0] += 1.0; });
  });
  EXPECT_DOUBLE_EQ(rt.get(v)[0], 8.0);
  EXPECT_DOUBLE_EQ(rt.get(v)[1], 7.0);
}

TEST_P(EngineTest, DynamicAllocationInsideRun) {
  Runtime rt(config_for(GetParam()));
  auto out = rt.alloc<double>(1, "out");
  rt.run([&](TaskContext& ctx) {
    auto scratch = rt.alloc<double>(8, "scratch");
    ctx.withonly([&](AccessDecl& d) { d.wr(scratch); },
                 [scratch](TaskContext& t) {
                   auto s = t.write(scratch);
                   for (std::size_t i = 0; i < s.size(); ++i) s[i] = 2.0;
                 });
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd(scratch);
          d.wr(out);
        },
        [scratch, out](TaskContext& t) {
          auto in = t.read(scratch);
          t.write(out)[0] = std::accumulate(in.begin(), in.end(), 0.0);
        });
  });
  EXPECT_DOUBLE_EQ(rt.get(out)[0], 16.0);
}

TEST_P(EngineTest, ChargeAccumulatesWork) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<int>(1, "v");
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 4; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                   [v](TaskContext& t) {
                     t.charge(250.0);
                     t.commute(v)[0] += 1;
                   });
    }
  });
  EXPECT_DOUBLE_EQ(rt.stats().total_charged_work, 1000.0);
  EXPECT_EQ(rt.get(v)[0], 4);
}

TEST_P(EngineTest, ManyObjectsManyTasksStress) {
  Runtime rt(config_for(GetParam()));
  constexpr int kObjects = 16;
  constexpr int kRounds = 10;
  std::vector<SharedRef<std::int64_t>> objs;
  for (int i = 0; i < kObjects; ++i)
    objs.push_back(rt.alloc<std::int64_t>(1));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kObjects; ++i) {
        auto src = objs[i];
        auto dst = objs[(i + 1) % kObjects];
        ctx.withonly(
            [&](AccessDecl& d) {
              d.rd(src);
              d.rd_wr(dst);
            },
            [src, dst](TaskContext& t) {
              const auto s = t.read(src)[0];
              auto dh = t.read_write(dst);
              dh[0] = dh[0] * 2 + s + 1;
            });
      }
    }
  });
  // Compare against a serial reference evaluation.
  std::vector<std::int64_t> ref(kObjects, 0);
  for (int r = 0; r < kRounds; ++r)
    for (int i = 0; i < kObjects; ++i) {
      ref[(i + 1) % kObjects] = ref[(i + 1) % kObjects] * 2 + ref[i] + 1;
    }
  for (int i = 0; i < kObjects; ++i) EXPECT_EQ(rt.get(objs[i])[0], ref[i]);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade
