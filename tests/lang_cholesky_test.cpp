// The paper's Figure 6, as a script: the sparse Cholesky factorization
// written in the mini Jade language, run on every engine, and required to
// match the serial factorization bit for bit.  The driver loop reads the
// row-index structure while update tasks hold rd() on it — exactly the
// sharing pattern of the paper's factor() function.
#include <gtest/gtest.h>

#include "jade/apps/cholesky.hpp"
#include "jade/lang/interp.hpp"
#include "jade/lang/parser.hpp"
#include "jade/mach/presets.hpp"

namespace jade::lang {
namespace {

// Figure 6, adapted to the script syntax: `c` is the column object array,
// `r` the row-index object, `cp` the column-pointer object.
const char* kFactorScript = R"(
  for (var i = 0; i < n; i = i + 1) {
    withonly { rd_wr(c[i]); rd(c_all); rd(r); rd(cp); } do (i) {
      // InternalUpdate(c, r, i)
      var d = sqrt(c[i][0]);
      c[i][0] = d;
      for (var k = 1; k < len(c[i]); k = k + 1)
        c[i][k] = c[i][k] / d;
    }
    for (var k = cp[i]; k < cp[i + 1]; k = k + 1) {
      var j = r[k];   // the dynamically resolved target r[j] of the paper
      withonly { rd_wr(c[j]); rd(c[i]); rd(c_all); rd(r); rd(cp); } do (i, j) {
        // ExternalUpdate(c, r, i, r[j])
        var p = cp[i];
        while (r[p] != j) p = p + 1;
        var lji = c[i][1 + (p - cp[i])];
        c[j][0] = c[j][0] - lji * lji;
        var q = cp[j];
        var t = p + 1;
        while (t < cp[i + 1]) {
          var row = r[t];
          while (r[q] < row) q = q + 1;
          c[j][1 + (q - cp[j])] =
              c[j][1 + (q - cp[j])] - lji * c[i][1 + (t - cp[i])];
          t = t + 1;
        }
      }
    }
  }
)";

RuntimeConfig config_for(EngineKind kind) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = 4;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ipsc860(4);
  return cfg;
}

class LangCholeskyTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(LangCholeskyTest, Figure6ScriptMatchesSerialFactorization) {
  const auto a = apps::make_spd(36, 0.18, 77);
  auto expect = a;
  apps::factor_serial(expect);

  Runtime rt(config_for(GetParam()));
  auto jm = apps::upload_matrix(rt, a);
  Environment env;
  env.bind("c", jm.cols);
  // A stand-in for the paper's rd(c): reading the column-vector structure
  // itself.  We bind a 1-element marker object tasks declare rd on.
  env.bind("c_all", rt.alloc<int>(1, "c_all"));
  env.bind("r", jm.row_idx_obj);
  env.bind("cp", jm.col_ptr_obj);
  env.bind_scalar("n", a.n);

  run_program(rt, parse(kFactorScript), env);

  const auto got = apps::download_matrix(rt, jm);
  EXPECT_EQ(got.cols, expect.cols);  // bit-identical serial semantics
  // 1 InternalUpdate per column + 1 ExternalUpdate per subdiagonal entry.
  EXPECT_EQ(rt.stats().tasks_created,
            static_cast<std::uint64_t>(a.n) + a.row_idx.size());
}

TEST_P(LangCholeskyTest, ScriptAndCxxVersionsAgreeExactly) {
  const auto a = apps::make_spd(28, 0.25, 3);

  Runtime rt_script(config_for(GetParam()));
  auto jm_script = apps::upload_matrix(rt_script, a);
  Environment env;
  env.bind("c", jm_script.cols);
  env.bind("c_all", rt_script.alloc<int>(1, "c_all"));
  env.bind("r", jm_script.row_idx_obj);
  env.bind("cp", jm_script.col_ptr_obj);
  env.bind_scalar("n", a.n);
  run_program(rt_script, parse(kFactorScript), env);

  Runtime rt_cxx(config_for(GetParam()));
  auto jm_cxx = apps::upload_matrix(rt_cxx, a);
  rt_cxx.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm_cxx); });

  EXPECT_EQ(apps::download_matrix(rt_script, jm_script).cols,
            apps::download_matrix(rt_cxx, jm_cxx).cols);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, LangCholeskyTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade::lang
