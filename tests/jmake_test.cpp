// Tests of the parallel make application (paper Section 7.1).
#include <gtest/gtest.h>

#include "jade/apps/jmake.hpp"
#include "jade/mach/presets.hpp"

namespace jade::apps {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

TEST(MakeSerial, ChainRunsEveryCommandOnce) {
  const auto mf = chain_makefile(6);
  const auto r = make_serial(mf);
  EXPECT_EQ(r.commands_run, 5);
  // Timestamps strictly increase along the chain.
  for (int i = 1; i < 6; ++i) EXPECT_GT(r.mtime[i], r.mtime[i - 1]);
}

TEST(MakeSerial, FreshTargetsAreSkipped) {
  auto mf = wide_makefile(4);
  // Mark two objects newer than their sources: up to date.
  mf.initial_mtime[4] = 1000;
  mf.initial_mtime[5] = 1000;
  const auto r = make_serial(mf);
  EXPECT_EQ(r.commands_run, 2);
  EXPECT_EQ(r.mtime[4], 1000);  // untouched
}

TEST(MakeSerial, TouchPropagatesTransitively) {
  auto mf = project_makefile(4, 2);
  auto all = make_serial(mf);
  EXPECT_EQ(all.commands_run, 4 + 1 + 2);  // objects + lib + binaries

  // Rebuild from the built state, touching one source: its object, the
  // library, and both binaries rebuild.
  mf.initial_mtime = all.mtime;
  mf.initial_mtime[0] = 100000;  // touch src0
  const auto incremental = make_serial(mf);
  EXPECT_EQ(incremental.commands_run, 1 + 1 + 2);
}

TEST(MakeSerial, RandomMakefileDeterministic) {
  const auto a = make_serial(random_makefile(30, 0.1, 5));
  const auto b = make_serial(random_makefile(30, 0.1, 5));
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.commands_run, b.commands_run);
}

class JadeMakeTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(JadeMakeTest, ResultsMatchSerialMake) {
  for (auto mf : {chain_makefile(8), wide_makefile(8),
                  project_makefile(6, 3), random_makefile(24, 0.12, 9)}) {
    const auto expect = make_serial(mf);
    Runtime rt(config_for(GetParam()));
    auto jm = upload_make(rt, mf);
    int commands = 0;
    rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, &commands); });
    const auto got = download_make(rt, jm);
    EXPECT_EQ(got.mtime, expect.mtime);
    EXPECT_EQ(got.hash, expect.hash);
    EXPECT_EQ(commands, expect.commands_run);
    EXPECT_EQ(rt.stats().tasks_created,
              static_cast<std::uint64_t>(expect.commands_run));
  }
}

TEST_P(JadeMakeTest, IncrementalRebuildRunsOnlyOutOfDateCommands) {
  auto mf = project_makefile(6, 2);
  const auto full = make_serial(mf);
  mf.initial_mtime = full.mtime;
  touch_sources(mf, 0.4, 3);
  const auto expect = make_serial(mf);
  EXPECT_LT(expect.commands_run, full.commands_run);

  Runtime rt(config_for(GetParam()));
  auto jm = upload_make(rt, mf);
  int commands = 0;
  rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, &commands); });
  EXPECT_EQ(commands, expect.commands_run);
  EXPECT_EQ(download_make(rt, jm).hash, expect.hash);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, JadeMakeTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

TEST(JadeMakeSim, WideBuildScalesUntilDiskBinds) {
  auto duration = [](int machines) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ideal(machines);
    Runtime rt(std::move(cfg));
    auto jm = upload_make(rt, wide_makefile(24));
    rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, nullptr); });
    return rt.sim_duration();
  };
  const double t1 = duration(1);
  const double t4 = duration(4);
  const double t16 = duration(16);
  EXPECT_LT(t4, 0.5 * t1);  // compilation parallelizes
  // Disk I/O (20% of each command) serializes: speedup must flatten well
  // below 16.
  EXPECT_GT(t16, t1 / 12.0);
}

TEST(JadeMakeSim, ChainHasNoParallelism) {
  auto duration = [](int machines) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ideal(machines);
    Runtime rt(std::move(cfg));
    auto jm = upload_make(rt, chain_makefile(10));
    rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, nullptr); });
    return rt.sim_duration();
  };
  EXPECT_GT(duration(8), 0.85 * duration(1));
}

}  // namespace
}  // namespace jade::apps
