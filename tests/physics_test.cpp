// Physical sanity checks on the application kernels: the reproduced
// workloads should not just be deterministic — they should behave like the
// computations they stand in for.
#include <gtest/gtest.h>

#include <cmath>

#include "jade/apps/barnes_hut.hpp"
#include "jade/apps/water.hpp"

namespace jade::apps {
namespace {

TEST(WaterPhysics, PairForcesAreAntisymmetric) {
  // Newton's third law at the system level: with every molecule summing
  // interactions over all others, total force must vanish (up to FP noise).
  WaterConfig c;
  c.molecules = 64;
  c.groups = 4;
  c.timesteps = 1;
  auto s = make_water(c);
  water_step_serial(c, s);
  double fx = 0, fy = 0, fz = 0, fscale = 0;
  for (int i = 0; i < s.n; ++i) {
    fx += s.force[3 * i];
    fy += s.force[3 * i + 1];
    fz += s.force[3 * i + 2];
    fscale += std::abs(s.force[3 * i]) + std::abs(s.force[3 * i + 1]) +
              std::abs(s.force[3 * i + 2]);
  }
  const double tol = 1e-9 * std::max(1.0, fscale);
  EXPECT_NEAR(fx, 0.0, tol);
  EXPECT_NEAR(fy, 0.0, tol);
  EXPECT_NEAR(fz, 0.0, tol);
  EXPECT_GT(fscale, 0.0);
}

TEST(WaterPhysics, MomentumGrowsOnlyFromIntegrationNoise) {
  // Zero initial velocities + zero net force => total momentum stays ~0
  // across steps.
  WaterConfig c;
  c.molecules = 50;
  c.groups = 5;
  c.timesteps = 4;
  auto s = make_water(c);
  water_run_serial(c, s);
  double px = 0, vscale = 0;
  for (int i = 0; i < s.n; ++i) {
    px += s.vel[3 * i];
    vscale += std::abs(s.vel[3 * i]);
  }
  EXPECT_GT(vscale, 0.0);  // things are moving...
  EXPECT_NEAR(px, 0.0, 1e-9 * std::max(1.0, vscale));  // ...but not drifting
}

TEST(BhPhysics, AggregateMassMatchesAndForcesAttract) {
  // theta -> 0 degenerates Barnes-Hut toward direct summation; compare a
  // strict tree walk against a coarse one: both must point roughly the same
  // way for a well-separated probe body.
  BhConfig strict;
  strict.bodies = 128;
  strict.groups = 1;
  strict.timesteps = 1;
  strict.theta = 0.05;
  BhConfig coarse = strict;
  coarse.theta = 1.2;

  auto a = make_bodies(strict);
  auto b = a;
  bh_run_serial(strict, a);
  bh_run_serial(coarse, b);
  // Velocities after one step are proportional to the computed forces;
  // compare directions via a normalized dot product over all bodies.
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.vel.size(); ++i) {
    dot += a.vel[i] * b.vel[i];
    na += a.vel[i] * a.vel[i];
    nb += b.vel[i] * b.vel[i];
  }
  ASSERT_GT(na, 0.0);
  ASSERT_GT(nb, 0.0);
  EXPECT_GT(dot / std::sqrt(na * nb), 0.9);  // approximation, same physics
}

TEST(BhPhysics, TwoBodySymmetry) {
  // Two equal masses attract each other along the connecting line with
  // (near-)equal and opposite accelerations.
  BhConfig c;
  c.bodies = 2;
  c.groups = 1;
  c.timesteps = 1;
  c.theta = 0.01;
  auto s = make_bodies(c);
  s.pos = {20.0, 50.0, 80.0, 50.0};
  s.mass = {1.0, 1.0};
  s.vel.assign(4, 0.0);
  bh_run_serial(c, s);
  EXPECT_GT(s.vel[0], 0.0);   // body 0 pulled toward +x
  EXPECT_LT(s.vel[2], 0.0);   // body 1 pulled toward -x
  EXPECT_NEAR(s.vel[0], -s.vel[2], 1e-12);
  EXPECT_NEAR(s.vel[1], 0.0, 1e-12);
  EXPECT_NEAR(s.vel[3], 0.0, 1e-12);
}

}  // namespace
}  // namespace jade::apps
