// Tests of the with-cont construct (Section 4.2): deferred-right conversion,
// early retirement, and the pipelining they enable — across all engines.
#include <gtest/gtest.h>

#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

class WithContTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(WithContTest, DeferredConversionSeesProducerValue) {
  Runtime rt(config_for(GetParam()));
  auto a = rt.alloc<double>(1, "a");
  auto b = rt.alloc<double>(1, "b");
  rt.run([&](TaskContext& ctx) {
    // Consumer created FIRST with a deferred read: it may start before the
    // producer-of-b exists, but its rd conversion must observe the value
    // the producer (created later but earlier in serial order? no —
    // producer is later in serial order, so the consumer's df_rd reserves
    // the position BEFORE the producer and reads the initial value).
    ctx.withonly(
        [&](AccessDecl& d) {
          d.df_rd(a);
          d.wr(b);
        },
        [a, b](TaskContext& t) {
          t.with_cont([&](AccessDecl& d) { d.rd(a); });
          t.write(b)[0] = t.read(a)[0] + 1.0;
        });
  });
  EXPECT_DOUBLE_EQ(rt.get(b)[0], 1.0);  // read initial a == 0
}

TEST_P(WithContTest, ConversionWaitsForEarlierWriter) {
  Runtime rt(config_for(GetParam()));
  auto col = rt.alloc<double>(4, "col");
  auto out = rt.alloc<double>(1, "out");
  rt.run([&](TaskContext& ctx) {
    // Producer first (earlier serial position).
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(col); },
                 [col](TaskContext& t) {
                   auto c = t.read_write(col);
                   for (auto& x : c) x = 2.5;
                 });
    // Consumer declares deferred read, converts, and must see 2.5.
    ctx.withonly(
        [&](AccessDecl& d) {
          d.df_rd(col);
          d.wr(out);
        },
        [col, out](TaskContext& t) {
          t.with_cont([&](AccessDecl& d) { d.rd(col); });
          auto c = t.read(col);
          t.write(out)[0] = c[0] + c[3];
        });
  });
  EXPECT_DOUBLE_EQ(rt.get(out)[0], 5.0);
}

TEST_P(WithContTest, PipelinedConsumerDrainsProducerSequence) {
  // The paper's factor/backsubst pattern: producer tasks write columns in
  // order; one long-lived consumer converts each column's deferred read
  // just in time and retires it right after use.
  Runtime rt(config_for(GetParam()));
  constexpr int kCols = 12;
  std::vector<SharedRef<double>> cols;
  for (int i = 0; i < kCols; ++i)
    cols.push_back(rt.alloc<double>(2, "col" + std::to_string(i)));
  auto x = rt.alloc<double>(1, "x");
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < kCols; ++i) {
      auto c = cols[i];
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(c); },
                   [c, i](TaskContext& t) {
                     auto h = t.read_write(c);
                     h[0] = i + 1;
                     h[1] = 2.0 * (i + 1);
                   });
    }
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(x);
          for (auto& c : cols) d.df_rd(c);
        },
        [cols, x](TaskContext& t) {
          for (std::size_t j = 0; j < cols.size(); ++j) {
            t.with_cont([&](AccessDecl& d) { d.rd(cols[j]); });
            auto c = t.read(cols[j]);
            t.read_write(x)[0] += c[0] + c[1];
            t.with_cont([&](AccessDecl& d) { d.no_rd(cols[j]); });
          }
        });
  });
  double expect = 0;
  for (int i = 1; i <= kCols; ++i) expect += 3.0 * i;
  EXPECT_DOUBLE_EQ(rt.get(x)[0], expect);
}

TEST_P(WithContTest, NoWrReleasesWaitersBeforeTaskEnds) {
  // A task retires its write early; a later task reads the released value
  // while the first task keeps computing elsewhere.  Result must equal the
  // serial outcome regardless.
  Runtime rt(config_for(GetParam()));
  auto shared_obj = rt.alloc<double>(1, "shared");
  auto other = rt.alloc<double>(1, "other");
  auto result = rt.alloc<double>(1, "result");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd_wr(shared_obj);
          d.rd_wr(other);
        },
        [shared_obj, other](TaskContext& t) {
          t.read_write(shared_obj)[0] = 10.0;
          t.with_cont([&](AccessDecl& d) {
            d.no_rd(shared_obj);
            d.no_wr(shared_obj);
          });
          t.read_write(other)[0] = 99.0;  // keeps running after release
        });
    ctx.withonly(
        [&](AccessDecl& d) {
          d.rd(shared_obj);
          d.wr(result);
        },
        [shared_obj, result](TaskContext& t) {
          t.write(result)[0] = t.read(shared_obj)[0] * 2.0;
        });
  });
  EXPECT_DOUBLE_EQ(rt.get(result)[0], 20.0);
  EXPECT_DOUBLE_EQ(rt.get(other)[0], 99.0);
}

TEST_P(WithContTest, AccessAfterRetirementIsError) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  EXPECT_THROW(
      rt.run([&](TaskContext& ctx) {
        ctx.withonly([&](AccessDecl& d) { d.rd(v); },
                     [v](TaskContext& t) {
                       t.with_cont([&](AccessDecl& d) { d.no_rd(v); });
                       (void)t.read(v)[0];
                     });
      }),
      UndeclaredAccessError);
}

TEST_P(WithContTest, AddingNewObjectMidTaskIsError) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  auto w = rt.alloc<double>(1, "w");
  EXPECT_THROW(
      rt.run([&](TaskContext& ctx) {
        ctx.withonly([&](AccessDecl& d) { d.rd(v); },
                     [v, w](TaskContext& t) {
                       t.with_cont([&](AccessDecl& d) { d.rd(w); });
                     });
      }),
      SpecUpdateError);
}

TEST_P(WithContTest, UnconvertedDeferredAccessIsError) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  EXPECT_THROW(rt.run([&](TaskContext& ctx) {
                 ctx.withonly([&](AccessDecl& d) { d.df_rd(v); },
                              [v](TaskContext& t) { (void)t.read(v)[0]; });
               }),
               UndeclaredAccessError);
}

TEST_P(WithContTest, DeferredWriteConversionOrders) {
  // Writer-after-writer through deferred declarations: the second task
  // defers its write, converts mid-body, and must observe the first
  // writer's value.
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<double>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) { t.read_write(v)[0] = 3.0; });
    ctx.withonly([&](AccessDecl& d) { d.df_rd_wr(v); },
                 [v](TaskContext& t) {
                   t.with_cont([&](AccessDecl& d) { d.rd_wr(v); });
                   auto h = t.read_write(v);
                   h[0] = h[0] * h[0];
                 });
  });
  EXPECT_DOUBLE_EQ(rt.get(v)[0], 9.0);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, WithContTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace jade
