// Tests of the Barnes-Hut kernel (paper Section 7).
#include <gtest/gtest.h>

#include "jade/apps/barnes_hut.hpp"
#include "jade/mach/presets.hpp"

namespace jade::apps {
namespace {

BhConfig small_config() {
  BhConfig c;
  c.bodies = 96;
  c.groups = 4;
  c.timesteps = 2;
  return c;
}

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

TEST(BhSerial, DeterministicAndMoving) {
  const auto c = small_config();
  auto a = make_bodies(c);
  auto b = make_bodies(c);
  bh_run_serial(c, a);
  bh_run_serial(c, b);
  EXPECT_EQ(a.pos, b.pos);
  const auto fresh = make_bodies(c);
  EXPECT_NE(a.pos, fresh.pos);
}

class JadeBhTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(JadeBhTest, MatchesSerialBitExactly) {
  const auto c = small_config();
  auto expect = make_bodies(c);
  bh_run_serial(c, expect);

  Runtime rt(config_for(GetParam()));
  auto w = upload_bh(rt, c, make_bodies(c));
  rt.run([&](TaskContext& ctx) { bh_run_jade(ctx, w); });
  const auto got = download_bh(rt, w);
  EXPECT_EQ(got.pos, expect.pos);
  EXPECT_EQ(got.vel, expect.vel);
  EXPECT_DOUBLE_EQ(bh_checksum(got), bh_checksum(expect));
}

TEST_P(JadeBhTest, GroupingInvariant) {
  auto run_groups = [&](int groups) {
    BhConfig c = small_config();
    c.groups = groups;
    Runtime rt(config_for(GetParam()));
    auto w = upload_bh(rt, c, make_bodies(c));
    rt.run([&](TaskContext& ctx) { bh_run_jade(ctx, w); });
    return download_bh(rt, w).pos;
  };
  const auto base = run_groups(1);
  EXPECT_EQ(run_groups(3), base);
  EXPECT_EQ(run_groups(8), base);
}

TEST_P(JadeBhTest, TaskStructure) {
  const auto c = small_config();
  Runtime rt(config_for(GetParam()));
  auto w = upload_bh(rt, c, make_bodies(c));
  rt.run([&](TaskContext& ctx) { bh_run_jade(ctx, w); });
  // Per step: build + groups force tasks + integrate.
  EXPECT_EQ(rt.stats().tasks_created,
            static_cast<std::uint64_t>(c.timesteps) * (c.groups + 2));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, JadeBhTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

TEST(JadeBhSim, TreeReplicatesToReaders) {
  BhConfig c = small_config();
  c.groups = 6;
  c.timesteps = 1;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(4);
  Runtime rt(std::move(cfg));
  auto w = upload_bh(rt, c, make_bodies(c));
  rt.run([&](TaskContext& ctx) { bh_run_jade(ctx, w); });
  // Force tasks on remote machines copy (not move) the shared tree.
  EXPECT_GT(rt.stats().object_copies, 0u);
}

}  // namespace
}  // namespace jade::apps
