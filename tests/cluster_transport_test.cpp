// CoherenceTransport seam tests: SocketTransport carrying the
// CoherenceProtocol's control traffic over real in-process socketpairs —
// loopback channels, no fork — so the sanitizer jobs can cover the
// coordinator's socket path without multi-process machinery.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <vector>

#include "jade/cluster/channel.hpp"
#include "jade/cluster/socket_transport.hpp"
#include "jade/core/stats.hpp"
#include "jade/store/coherence.hpp"
#include "jade/store/directory.hpp"

namespace jade::cluster {
namespace {

/// M loopback links: the "coordinator" end attaches to a SocketTransport,
/// the "worker" end lets the test observe what actually crossed the wire.
class LoopbackFixture : public ::testing::Test {
 protected:
  static constexpr int kMachines = 3;

  void SetUp() override {
    transport_ = std::make_unique<SocketTransport>(
        [this] { return clock_; }, nullptr);
    for (int m = 0; m < kMachines; ++m) {
      int sv[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
      coord_.push_back(std::make_unique<Channel>(sv[0]));
      peer_.push_back(std::make_unique<Channel>(sv[1]));
      coord_.back()->set_nonblocking();
      peer_.back()->set_nonblocking();
      transport_->set_channel(m, coord_.back().get());
    }
  }

  /// Pushes queued coordinator frames onto the wire and reads machine `m`'s
  /// side of the link.
  std::vector<Frame> delivered_to(int m) {
    coord_[static_cast<std::size_t>(m)]->flush();
    std::vector<Frame> frames;
    peer_[static_cast<std::size_t>(m)]->drain(frames);
    return frames;
  }

  SimTime clock_ = 0;
  std::unique_ptr<SocketTransport> transport_;
  std::vector<std::unique_ptr<Channel>> coord_;
  std::vector<std::unique_ptr<Channel>> peer_;
};

TEST_F(LoopbackFixture, UnicastDeliversOneCoherenceFrame) {
  clock_ = 1.5;
  const SimTime arrival = transport_->unicast(0, 1, 128, clock_);
  EXPECT_DOUBLE_EQ(arrival, 1.5);  // wall time: arrival is immediate

  const std::vector<Frame> frames = delivered_to(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kCoherence);
  const CoherenceMsg msg = unpack<CoherenceMsg>(frames[0].payload);
  EXPECT_EQ(msg.from, 0);
  EXPECT_EQ(msg.to, 1);
  EXPECT_EQ(msg.bytes, 128u);

  EXPECT_TRUE(delivered_to(0).empty());
  EXPECT_TRUE(delivered_to(2).empty());
  EXPECT_EQ(transport_->control_frames(), 1u);
}

TEST_F(LoopbackFixture, MulticastFansOutToEveryTarget) {
  const std::vector<MachineId> targets = {0, 2};
  transport_->multicast(1, targets, 64, 0.0);
  for (MachineId t : targets) {
    const std::vector<Frame> frames = delivered_to(t);
    ASSERT_EQ(frames.size(), 1u) << "machine " << t;
    const CoherenceMsg msg = unpack<CoherenceMsg>(frames[0].payload);
    EXPECT_EQ(msg.from, 1);
    EXPECT_EQ(msg.to, t);
  }
  EXPECT_TRUE(delivered_to(1).empty());
  EXPECT_EQ(transport_->control_frames(), 2u);
}

TEST_F(LoopbackFixture, DetachedChannelIsSkippedNotCrashed) {
  transport_->set_channel(1, nullptr);  // machine 1 died
  EXPECT_NO_THROW(transport_->unicast(0, 1, 64, 0.0));
  EXPECT_NO_THROW(
      transport_->multicast(0, std::vector<MachineId>{1, 2}, 64, 0.0));
  EXPECT_TRUE(delivered_to(1).empty());
  ASSERT_EQ(delivered_to(2).size(), 1u);
  // Only the reachable target counts as a control frame.
  EXPECT_EQ(transport_->control_frames(), 1u);
}

TEST_F(LoopbackFixture, OutOfRangeTargetIsIgnored) {
  EXPECT_NO_THROW(transport_->unicast(0, 77, 64, 0.0));
  EXPECT_NO_THROW(transport_->unicast(0, -1, 64, 0.0));
  EXPECT_EQ(transport_->control_frames(), 0u);
}

// --- the full protocol over the socket transport ----------------------------

class ProtocolOverSockets : public LoopbackFixture {
 protected:
  void SetUp() override {
    LoopbackFixture::SetUp();
    directory_ = std::make_unique<ObjectDirectory>(kMachines);
    obj_ = objects_.add(TypeDescriptor::array_of<double>(8), "x");
    directory_->add_object(objects_.info(obj_), /*home=*/0);
    protocol_ = std::make_unique<CoherenceProtocol>(
        *transport_, *directory_, objects_,
        std::vector<Endian>(kMachines, Endian::kLittle),
        CoherenceConfig{CommConfig{}, 64, 0.0}, stats_, nullptr);
  }

  ObjectTable objects_;
  std::unique_ptr<ObjectDirectory> directory_;
  RuntimeStats stats_;
  std::unique_ptr<CoherenceProtocol> protocol_;
  ObjectId obj_ = kInvalidObject;
};

TEST_F(ProtocolOverSockets, ReadFetchReplicatesAndNotifiesOverTheWire) {
  protocol_->fetch(1, {{obj_, /*exclusive=*/false, /*blocking=*/true}});
  EXPECT_TRUE(directory_->present(obj_, 1));
  EXPECT_EQ(directory_->owner(obj_), 0);
  // The copy travelled as at least one frame on machine 1's link.
  EXPECT_FALSE(delivered_to(1).empty());
}

TEST_F(ProtocolOverSockets, FirstWriteInvalidatesReplicasOnTheWire) {
  protocol_->fetch(1, {{obj_, false, true}});
  protocol_->fetch(2, {{obj_, false, true}});
  (void)delivered_to(1);
  (void)delivered_to(2);

  const std::uint64_t dv_before = directory_->data_version(obj_);
  std::vector<ObjectId> dirtied;
  protocol_->first_write_invalidate(/*writer=*/0, obj_, dirtied);
  EXPECT_FALSE(directory_->present(obj_, 1));
  EXPECT_FALSE(directory_->present(obj_, 2));
  EXPECT_EQ(directory_->data_version(obj_), dv_before + 1);
  ASSERT_EQ(dirtied.size(), 1u);
  EXPECT_EQ(dirtied[0], obj_);

  // Invalidation control traffic reached the (ex-)replica holders.
  EXPECT_FALSE(delivered_to(1).empty());
  EXPECT_FALSE(delivered_to(2).empty());

  // Same attempt, same object: the version must not bump again.
  protocol_->first_write_invalidate(0, obj_, dirtied);
  EXPECT_EQ(directory_->data_version(obj_), dv_before + 1);
  EXPECT_EQ(dirtied.size(), 1u);
}

TEST_F(ProtocolOverSockets, ExclusiveFetchMovesOwnership) {
  protocol_->fetch(2, {{obj_, /*exclusive=*/true, /*blocking=*/true}});
  EXPECT_EQ(directory_->owner(obj_), 2);
  EXPECT_TRUE(directory_->present(obj_, 2));
  EXPECT_FALSE(delivered_to(2).empty());
}

TEST_F(ProtocolOverSockets, StatsBookRealWireTraffic) {
  protocol_->fetch(1, {{obj_, false, true}});
  std::vector<ObjectId> dirtied;
  protocol_->first_write_invalidate(0, obj_, dirtied);
  EXPECT_GT(stats_.messages, 0u);
  EXPECT_GT(stats_.bytes_sent, 0u);
  EXPECT_GT(stats_.invalidations, 0u);
  EXPECT_GT(transport_->control_frames(), 0u);
}

}  // namespace
}  // namespace jade::cluster
