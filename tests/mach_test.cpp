// Tests for cluster configuration and the platform presets of Section 7.
#include <gtest/gtest.h>

#include "jade/mach/presets.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

TEST(ClusterConfig, ValidationCatchesEmpty) {
  ClusterConfig c;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ClusterConfig, ValidationCatchesTooMany) {
  // The hard 64-machine bitmask cap is gone (store/replica_set.hpp); only the
  // kMaxMachines sanity ceiling remains.
  ClusterConfig c = presets::ideal(1);
  for (int i = 0; i < 70; ++i) c.machines.push_back(c.machines[0]);
  EXPECT_NO_THROW(c.validate());
  while (c.machine_count() <= kMaxMachines)
    c.machines.push_back(c.machines[0]);
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ClusterConfig, ValidationCatchesBadSpeed) {
  ClusterConfig c = presets::ideal(2);
  c.machines[1].ops_per_second = 0;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(ClusterConfig, NetworkFactoryMatchesKind) {
  EXPECT_EQ(presets::dash(4).make_network()->name(), "ideal");
  EXPECT_EQ(presets::mica(4).make_network()->name(), "shared-bus");
  EXPECT_EQ(presets::ipsc860(4).make_network()->name(), "hypercube");
  EXPECT_EQ(presets::hrv(2).make_network()->name(), "crossbar");
  EXPECT_EQ(presets::mesh(4).make_network()->name(), "mesh");
  EXPECT_EQ(presets::ideal(4).make_network()->name(), "ideal");
}

TEST(Presets, MeshSharesNodesWithIpsc) {
  const auto m = presets::mesh(8);
  const auto c = presets::ipsc860(8);
  ASSERT_EQ(m.machine_count(), c.machine_count());
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(m.machines[i].ops_per_second, c.machines[i].ops_per_second);
  EXPECT_EQ(m.net, NetKind::kMesh);
}

TEST(Presets, DashIsSharedMemory) {
  const auto c = presets::dash(8);
  EXPECT_TRUE(c.shared_memory());
  EXPECT_EQ(c.machine_count(), 8);
  c.validate();
}

TEST(Presets, MicaUsesSlowBigEndianSparcs) {
  const auto c = presets::mica(4);
  EXPECT_FALSE(c.shared_memory());
  for (const auto& m : c.machines) {
    EXPECT_EQ(m.endian, Endian::kBig);
    EXPECT_LT(m.ops_per_second, 1.0e7);
  }
  c.validate();
}

TEST(Presets, Ipsc860IsHomogeneousHypercube) {
  const auto c = presets::ipsc860(16);
  EXPECT_EQ(c.net, NetKind::kHypercube);
  EXPECT_EQ(c.machine_count(), 16);
  for (const auto& m : c.machines)
    EXPECT_EQ(m.ops_per_second, c.machines[0].ops_per_second);
  c.validate();
}

TEST(Presets, HeteroMixesEndiannessAndSpeed) {
  const auto c = presets::hetero_workstations(4);
  EXPECT_EQ(c.machines[0].endian, Endian::kLittle);
  EXPECT_EQ(c.machines[1].endian, Endian::kBig);
  EXPECT_NE(c.machines[0].ops_per_second, c.machines[1].ops_per_second);
  c.validate();
}

TEST(Presets, HrvHasFrameSourceAndAccelerators) {
  const auto c = presets::hrv(3);
  EXPECT_EQ(c.machine_count(), 4);
  EXPECT_EQ(c.machines[0].kind, MachineKind::kFrameSource);
  for (int i = 1; i < 4; ++i)
    EXPECT_EQ(c.machines[i].kind, MachineKind::kAccelerator);
  // SPARC host and i860 accelerators have opposite byte orders — format
  // conversion runs on every frame transfer.
  EXPECT_NE(c.machines[0].endian, c.machines[1].endian);
  c.validate();
}

TEST(Presets, RelativePlatformSpeeds) {
  // The paper's platforms differ in per-node speed: i860 > R3000 > ELC.
  const double ipsc = presets::ipsc860(1).machines[0].ops_per_second;
  const double dash = presets::dash(1).machines[0].ops_per_second;
  const double mica = presets::mica(1).machines[0].ops_per_second;
  EXPECT_GT(ipsc, dash);
  EXPECT_GT(dash, mica);
}

TEST(Presets, MessagePassingOverheadsExceedSharedMemory) {
  EXPECT_GT(presets::mica(2).task_dispatch_overhead,
            presets::dash(2).task_dispatch_overhead);
  EXPECT_GT(presets::ipsc860(2).task_dispatch_overhead,
            presets::dash(2).task_dispatch_overhead);
}

}  // namespace
}  // namespace jade
