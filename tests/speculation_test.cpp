// Speculative task execution (SchedPolicy::spec): pending tasks whose only
// unresolved blockers are conservative, not-yet-exercised write declarations
// run ahead against snapshot-isolated buffers; the Serializer is the commit
// check when the blockers retire.  These tests pin down the semantics:
// serial results always, commits when the conservative writes never
// materialize, aborts (and the conflict-history throttle) when they do.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig sim_config(int machines, SchedPolicy sched) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  auto cluster = presets::ideal(machines);
  cluster.task_dispatch_overhead = 0;
  cluster.task_create_overhead = 0;
  cfg.cluster = std::move(cluster);
  cfg.sched = sched;
  return cfg;
}

SchedPolicy spec_on(int max_live = 8, int conflict_limit = 2) {
  SchedPolicy sched;
  sched.spec.enabled = true;
  sched.spec.max_live = max_live;
  sched.spec.conflict_limit = conflict_limit;
  return sched;
}

/// The canonical speculation-friendly shape: a conservative "refresh" stage
/// declares rd_wr on a control object but (this round) never touches it,
/// then `solvers` independent tasks each read the control object and write
/// their own output.  Returns the run's duration; outputs land in `out`.
double run_pipeline(Runtime& rt, SharedRef<int> ctrl,
                    const std::vector<SharedRef<int>>& outs, int rounds) {
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < rounds; ++r) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [](TaskContext& t) {
                     t.charge(1e7);  // 1 virtual second; no write happens
                   });
      for (auto out : outs) {
        ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                     [ctrl, out, r](TaskContext& t) {
                       t.charge(1e7);
                       t.write(out)[0] = t.read(ctrl)[0] + r + 1;
                     });
      }
    }
  });
  return rt.sim_duration();
}

TEST(SimSpeculation, ConservativeWritersPipelineAndCommit) {
  auto elapsed = [&](SchedPolicy sched, RuntimeStats* stats) {
    Runtime rt(sim_config(8, sched));
    auto ctrl = rt.alloc<int>(1);
    std::vector<SharedRef<int>> outs;
    for (int i = 0; i < 4; ++i) outs.push_back(rt.alloc<int>(1));
    const double d = run_pipeline(rt, ctrl, outs, /*rounds=*/2);
    for (std::size_t i = 0; i < outs.size(); ++i)
      EXPECT_EQ(rt.get(outs[i])[0], 2);  // last round: ctrl(0) + 2
    if (stats != nullptr) *stats = rt.stats();
    return d;
  };
  RuntimeStats off_stats, on_stats;
  const double off = elapsed(SchedPolicy{}, &off_stats);
  const double on = elapsed(spec_on(), &on_stats);
  EXPECT_EQ(off_stats.spec_started, 0u);
  // At least the first solver wave speculated; everything committed (the
  // conservative writes never materialize), nothing aborted.
  EXPECT_GE(on_stats.spec_started, 4u);
  EXPECT_EQ(on_stats.spec_committed, on_stats.spec_started);
  EXPECT_EQ(on_stats.spec_aborted, 0u);
  // The solvers overlap the conservative stage they used to serialize
  // behind: at least one full stage of the 4-stage serial chain vanishes.
  EXPECT_LT(on, off - 0.9);
}

TEST(SimSpeculation, MaterializedWriteAbortsAndRerunsWithSerialResult) {
  auto result = [&](SchedPolicy sched, RuntimeStats* stats) {
    Runtime rt(sim_config(4, sched));
    auto ctrl = rt.alloc<int>(1);
    auto out = rt.alloc<int>(1);
    rt.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [ctrl](TaskContext& t) {
                     t.charge(1e7);
                     t.read_write(ctrl)[0] = 7;  // the write materializes
                   });
      ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                   [ctrl, out](TaskContext& t) {
                     t.charge(1e6);
                     t.write(out)[0] = 2 * t.read(ctrl)[0];
                   });
    });
    if (stats != nullptr) *stats = rt.stats();
    return rt.get(out)[0];
  };
  RuntimeStats stats;
  EXPECT_EQ(result(SchedPolicy{}, nullptr), 14);
  EXPECT_EQ(result(spec_on(), &stats), 14);  // stale snapshot never commits
  EXPECT_GE(stats.spec_aborted, 1u);
  EXPECT_EQ(stats.spec_started, stats.spec_committed + stats.spec_aborted);
  EXPECT_GT(stats.spec_wasted_bytes, 0u);
}

TEST(SimSpeculation, ConflictHistoryThrottlesRepeatOffenders) {
  SchedPolicy sched = spec_on(/*max_live=*/2, /*conflict_limit=*/1);
  Runtime rt(sim_config(2, sched));
  auto ctrl = rt.alloc<int>(1);
  constexpr int kRounds = 6;
  std::vector<SharedRef<int>> outs;
  for (int i = 0; i < kRounds; ++i) outs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kRounds; ++r) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [ctrl, r](TaskContext& t) {
                     t.charge(1e7);
                     t.read_write(ctrl)[0] = r + 1;  // always conflicts
                   });
      auto out = outs[static_cast<std::size_t>(r)];
      ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                   [ctrl, out](TaskContext& t) {
                     t.charge(1e6);
                     t.write(out)[0] = t.read(ctrl)[0];
                   });
    }
  });
  for (int r = 0; r < kRounds; ++r)
    EXPECT_EQ(rt.get(outs[static_cast<std::size_t>(r)])[0], r + 1);
  const RuntimeStats& s = rt.stats();
  // Once ctrl's conflict history reaches conflict_limit, no new bets start
  // against it; only bets already in flight (at most max_live) can still
  // abort.  Wasted speculation is therefore bounded per contested object by
  // conflict_limit + max_live - 1, however many rounds keep conflicting.
  EXPECT_LE(s.spec_aborted, 2u);  // conflict_limit + max_live - 1
  EXPECT_GE(s.spec_denied, 1u);
}

TEST(SimSpeculation, UnsupportedOperationsAbortSilently) {
  // A speculative body that spawns (or changes its declaration) cannot run
  // ahead; it aborts, re-runs normally, and the child still executes.
  Runtime rt(sim_config(4, spec_on()));
  auto ctrl = rt.alloc<int>(1);
  auto out = rt.alloc<int>(1);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                 [](TaskContext& t) { t.charge(1e7); });
    ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.df_wr(out); },
                 [ctrl, out](TaskContext& t) {
                   t.charge(1e6);
                   (void)t.read(ctrl)[0];
                   // Deferred->immediate conversion is a with_cont edge the
                   // snapshot path cannot take.
                   t.with_cont([&](AccessDecl& d) { d.wr(out); });
                   t.write(out)[0] = 41;
                 });
  });
  EXPECT_EQ(rt.get(out)[0], 41);
  const RuntimeStats& s = rt.stats();
  EXPECT_EQ(s.spec_started, s.spec_committed + s.spec_aborted);
}

TEST(SimSpeculation, SameSeedRunsAreDeterministic) {
  auto capture = [&] {
    Runtime rt(sim_config(8, spec_on()));
    auto ctrl = rt.alloc<int>(1);
    std::vector<SharedRef<int>> outs;
    for (int i = 0; i < 6; ++i) outs.push_back(rt.alloc<int>(1));
    const double d = run_pipeline(rt, ctrl, outs, /*rounds=*/3);
    return std::make_tuple(d, rt.stats().spec_started,
                           rt.stats().spec_committed,
                           rt.stats().spec_aborted);
  };
  EXPECT_EQ(capture(), capture());
}

TEST(SimSpeculation, CountersReachTheMetricsRegistry) {
  Runtime rt(sim_config(4, spec_on()));
  auto ctrl = rt.alloc<int>(1);
  std::vector<SharedRef<int>> outs{rt.alloc<int>(1), rt.alloc<int>(1)};
  run_pipeline(rt, ctrl, outs, 1);
  const RuntimeStats& s = rt.stats();
  EXPECT_GT(s.spec_started, 0u);
  auto& m = rt.engine().metrics();
  EXPECT_EQ(m.counter("spec.started").value(), s.spec_started);
  EXPECT_EQ(m.counter("spec.committed").value(), s.spec_committed);
  EXPECT_EQ(m.counter("spec.aborted").value(), s.spec_aborted);
  EXPECT_EQ(m.counter("spec.denied").value(), s.spec_denied);
  EXPECT_EQ(m.counter("spec.wasted_bytes").value(), s.spec_wasted_bytes);
}

// --- ThreadEngine: real parallelism, correctness under any interleaving ----

RuntimeConfig thread_config(int threads, SchedPolicy sched) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = threads;
  cfg.sched = sched;
  return cfg;
}

TEST(ThreadSpeculation, SerialSemanticsUnderCommitsAndAborts) {
  for (int iter = 0; iter < 20; ++iter) {
    Runtime rt(thread_config(4, spec_on()));
    auto ctrl = rt.alloc<int>(1);
    constexpr int kRounds = 4;
    std::vector<SharedRef<int>> outs;
    for (int i = 0; i < kRounds; ++i) outs.push_back(rt.alloc<int>(1));
    rt.run([&](TaskContext& ctx) {
      for (int r = 0; r < kRounds; ++r) {
        const bool writes = (r % 2) == 1;
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                     [ctrl, writes, r](TaskContext& t) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(1));
                       if (writes) t.read_write(ctrl)[0] = r;
                     });
        auto out = outs[static_cast<std::size_t>(r)];
        ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                     [ctrl, out](TaskContext& t) {
                       t.write(out)[0] = t.read(ctrl)[0] + 100;
                     });
      }
    });
    // Serial semantics: round r's solver sees the last materialized write.
    EXPECT_EQ(rt.get(outs[0])[0], 100);  // no write yet
    EXPECT_EQ(rt.get(outs[1])[0], 101);
    EXPECT_EQ(rt.get(outs[2])[0], 101);
    EXPECT_EQ(rt.get(outs[3])[0], 103);
    const RuntimeStats& s = rt.stats();
    EXPECT_EQ(s.spec_started, s.spec_committed + s.spec_aborted);
  }
}

TEST(ThreadSpeculation, IdleWorkersRunAheadAndCommit) {
  Runtime rt(thread_config(4, spec_on()));
  auto ctrl = rt.alloc<int>(1);
  std::vector<SharedRef<int>> outs;
  for (int i = 0; i < 8; ++i) outs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                 [](TaskContext& t) {
                   (void)t;
                   // A long conservative stage: idle workers should run the
                   // solvers ahead instead of waiting it out.
                   std::this_thread::sleep_for(std::chrono::milliseconds(50));
                 });
    for (auto out : outs) {
      ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                   [ctrl, out](TaskContext& t) {
                     t.write(out)[0] = t.read(ctrl)[0] + 5;
                   });
    }
  });
  for (auto out : outs) EXPECT_EQ(rt.get(out)[0], 5);
  const RuntimeStats& s = rt.stats();
  EXPECT_GT(s.spec_started, 0u);
  EXPECT_EQ(s.spec_committed, s.spec_started);
  EXPECT_EQ(s.spec_aborted, 0u);
}

}  // namespace
}  // namespace jade
