// Tests for the SimEngine task-timeline recorder and its renderers.
#include <gtest/gtest.h>

#include "jade/core/runtime.hpp"
#include "jade/engine/sim_engine.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

Runtime make_runtime(bool record, int machines = 2) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  cfg.sched.record_timeline = record;
  return Runtime(std::move(cfg));
}

void run_sample(Runtime& rt, int tasks = 6) {
  std::vector<SharedRef<double>> objs;
  for (int i = 0; i < tasks; ++i) objs.push_back(rt.alloc<double>(256));
  rt.run([&](TaskContext& ctx) {
    for (auto o : objs) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                   [o](TaskContext& t) {
                     t.charge(5e5);
                     t.read_write(o)[0] = 1.0;
                   });
    }
  });
}

TEST(Timeline, DisabledByDefault) {
  Runtime rt = make_runtime(false);
  run_sample(rt);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  EXPECT_TRUE(eng->timeline().empty());
}

TEST(Timeline, RecordsOrderedPhasesPerTask) {
  Runtime rt = make_runtime(true);
  run_sample(rt, 6);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  const auto& tl = eng->timeline();
  ASSERT_EQ(tl.size(), 7u);  // 6 tasks + root
  int real_tasks = 0;
  for (const auto& t : tl) {
    EXPECT_LE(t.created, t.dispatched);
    EXPECT_LE(t.dispatched, t.body_start);
    EXPECT_LE(t.body_start, t.completed);
    EXPECT_GE(t.machine, 0);
    if (t.task_id != 0) {
      ++real_tasks;
      EXPECT_GT(t.execution(), 0.0);  // each task charged work
      EXPECT_GE(t.fetch_wait(), 0.0);
    }
  }
  EXPECT_EQ(real_tasks, 6);
}

TEST(Timeline, GanttRendersAllMachines) {
  Runtime rt = make_runtime(true, 3);
  run_sample(rt, 9);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  const std::string g =
      render_gantt(eng->timeline(), 3, rt.sim_duration(), 40);
  EXPECT_NE(g.find("m0 |"), std::string::npos);
  EXPECT_NE(g.find("m2 |"), std::string::npos);
  EXPECT_NE(g.find('#'), std::string::npos);  // someone executed something
}

TEST(Timeline, ResidencyBoundedByContextsAndPositive) {
  Runtime rt = make_runtime(true, 2);  // default: 2 contexts per machine
  run_sample(rt, 8);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  const auto util =
      machine_utilization(eng->timeline(), 2, rt.sim_duration());
  ASSERT_EQ(util.size(), 2u);
  for (double u : util) {
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 2.0 + 1e-9);  // residency, bounded by context count
  }
  // The CPU-busy fractions from RuntimeStats are genuine utilizations.
  for (double busy : rt.stats().machine_busy_seconds) {
    EXPECT_GT(busy, 0.0);
    EXPECT_LE(busy / rt.sim_duration(), 1.0 + 1e-9);
  }
}

TEST(Timeline, GanttAgreesBetweenRecorderAndTrace) {
  // The recorded timeline and the trace-derived one are the same data
  // (obs/timeline_view.hpp holds the single TaskTimeline type), so both
  // must render the identical Gantt for a seeded run.
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(3);
  cfg.sched.record_timeline = true;
  cfg.obs.trace = true;
  Runtime rt(std::move(cfg));
  run_sample(rt, 9);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  const std::vector<TaskTimeline> derived =
      obs::timeline_from_trace(rt.trace_events());
  const std::string from_recorder =
      render_gantt(eng->timeline(), 3, rt.sim_duration(), 48);
  const std::string from_trace =
      render_gantt(derived, 3, rt.sim_duration(), 48);
  EXPECT_FALSE(from_recorder.empty());
  EXPECT_EQ(from_recorder, from_trace);
}

TEST(Timeline, QueueWaitGrowsWhenMachinesOversubscribed) {
  // 12 equal tasks on 1 machine: later tasks wait longer in the ready
  // queue than the first ones.
  Runtime rt = make_runtime(true, 1);
  run_sample(rt, 12);
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  const auto& tl = eng->timeline();
  SimTime first_wait = -1, last_wait = -1;
  for (const auto& t : tl) {
    if (t.task_id == 1) first_wait = t.queue_wait();
    if (t.task_id == 12) last_wait = t.queue_wait();
  }
  ASSERT_GE(first_wait, 0.0);
  EXPECT_GT(last_wait, first_wait);
}

}  // namespace
}  // namespace jade
