// Unit tests for the interconnect cost models: latency/bandwidth math,
// contention (bus serialization, NIC occupancy) and statistics.
#include <gtest/gtest.h>

#include "jade/net/crossbar.hpp"
#include "jade/net/hypercube.hpp"
#include "jade/net/mesh.hpp"
#include "jade/net/network.hpp"
#include "jade/net/shared_bus.hpp"

namespace jade {
namespace {

TEST(IdealNet, LatencyPlusBandwidth) {
  IdealNet net(1e-3, 1e6);
  // 1000 bytes at 1 MB/s = 1 ms transmit + 1 ms latency.
  EXPECT_DOUBLE_EQ(net.schedule_transfer(0, 1, 1000, 0.0), 2e-3);
  // No contention: a simultaneous transfer costs the same.
  EXPECT_DOUBLE_EQ(net.schedule_transfer(2, 3, 1000, 0.0), 2e-3);
}

TEST(IdealNet, LocalDeliveryFree) {
  IdealNet net(1e-3, 1e6);
  EXPECT_DOUBLE_EQ(net.schedule_transfer(1, 1, 12345, 5.0), 5.0);
}

TEST(IdealNet, StatsAccumulate) {
  IdealNet net(0, 1e6);
  net.schedule_transfer(0, 1, 500, 0.0);
  net.schedule_transfer(1, 2, 1500, 0.0);
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 2000u);
  net.reset();
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(SharedBus, SerializesConcurrentTransfers) {
  SharedBusConfig cfg;
  cfg.latency = 0;
  cfg.per_message_overhead = 0;
  cfg.bytes_per_second = 1e6;
  SharedBusNet net(cfg);
  // Two 1000-byte messages submitted at t=0: the second waits for the bus.
  const SimTime a = net.schedule_transfer(0, 1, 1000, 0.0);
  const SimTime b = net.schedule_transfer(2, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, 1e-3);
  EXPECT_DOUBLE_EQ(b, 2e-3);
}

TEST(SharedBus, PerMessageOverheadOnWire) {
  SharedBusConfig cfg;
  cfg.latency = 0;
  cfg.per_message_overhead = 1e-3;
  cfg.bytes_per_second = 1e9;  // transmit ~ 0
  SharedBusNet net(cfg);
  net.schedule_transfer(0, 1, 10, 0.0);
  EXPECT_NEAR(net.busy_until(), 1e-3, 1e-7);
}

TEST(SharedBus, IdleBusStartsAtSubmitTime) {
  SharedBusNet net;
  const SimTime arr = net.schedule_transfer(0, 1, 100, 10.0);
  EXPECT_GT(arr, 10.0);
}

TEST(SharedBus, LocalDeliveryBypassesWire) {
  SharedBusNet net;
  EXPECT_DOUBLE_EQ(net.schedule_transfer(3, 3, 1 << 20, 7.0), 7.0);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(SharedBus, SaturationUnderLoad) {
  SharedBusConfig cfg;
  cfg.latency = 0;
  cfg.per_message_overhead = 0;
  cfg.bytes_per_second = 1e6;
  SharedBusNet net(cfg);
  SimTime last = 0;
  for (int i = 0; i < 10; ++i)
    last = net.schedule_transfer(i % 4, (i + 1) % 4, 1000, 0.0);
  // 10 back-to-back millisecond transfers = 10 ms of wire time.
  EXPECT_NEAR(last, 10e-3, 1e-9);
  EXPECT_NEAR(net.stats().busy_time, 10e-3, 1e-9);
}

TEST(Hypercube, HopCountIsXorPopcount) {
  EXPECT_EQ(HypercubeNet::hop_count(0, 0), 0);
  EXPECT_EQ(HypercubeNet::hop_count(0, 1), 1);
  EXPECT_EQ(HypercubeNet::hop_count(0, 3), 2);
  EXPECT_EQ(HypercubeNet::hop_count(5, 6), 2);  // 101 ^ 110 = 011
  EXPECT_EQ(HypercubeNet::hop_count(0, 7), 3);
}

TEST(Hypercube, FartherNodesTakeLonger) {
  HypercubeConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 1e-5;
  cfg.bytes_per_second = 1e9;
  HypercubeNet near_net(8, cfg);
  HypercubeNet far_net(8, cfg);
  const SimTime one_hop = near_net.schedule_transfer(0, 1, 0, 0.0);
  const SimTime three_hops = far_net.schedule_transfer(0, 7, 0, 0.0);
  EXPECT_NEAR(three_hops - one_hop, 2e-5, 1e-12);
}

TEST(Hypercube, DisjointPairsDoNotContend) {
  HypercubeConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 0;
  cfg.bytes_per_second = 1e6;
  HypercubeNet net(4, cfg);
  const SimTime a = net.schedule_transfer(0, 1, 1000, 0.0);
  const SimTime b = net.schedule_transfer(2, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, b);  // concurrent, unlike the shared bus
}

TEST(Hypercube, SenderNicSerializes) {
  HypercubeConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 0;
  cfg.bytes_per_second = 1e6;
  HypercubeNet net(4, cfg);
  const SimTime a = net.schedule_transfer(0, 1, 1000, 0.0);
  const SimTime b = net.schedule_transfer(0, 2, 1000, 0.0);  // same sender
  EXPECT_DOUBLE_EQ(a, 1e-3);
  EXPECT_DOUBLE_EQ(b, 2e-3);
}

TEST(Hypercube, ReceiverNicSerializes) {
  HypercubeConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 0;
  cfg.bytes_per_second = 1e6;
  HypercubeNet net(4, cfg);
  const SimTime a = net.schedule_transfer(0, 3, 1000, 0.0);
  const SimTime b = net.schedule_transfer(1, 3, 1000, 0.0);  // same receiver
  EXPECT_DOUBLE_EQ(a, 1e-3);
  EXPECT_GE(b, a);
}

TEST(Crossbar, DisjointPairsConcurrent) {
  CrossbarConfig cfg;
  cfg.latency = 0;
  cfg.per_message_overhead = 0;
  cfg.bytes_per_second = 1e6;
  CrossbarNet net(4, cfg);
  const SimTime a = net.schedule_transfer(0, 1, 1000, 0.0);
  const SimTime b = net.schedule_transfer(2, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Crossbar, ResetClearsOccupancy) {
  CrossbarNet net(2);
  net.schedule_transfer(0, 1, 1 << 20, 0.0);
  net.reset();
  const SimTime fresh = net.schedule_transfer(0, 1, 0, 0.0);
  CrossbarNet reference(2);
  EXPECT_DOUBLE_EQ(fresh, reference.schedule_transfer(0, 1, 0, 0.0));
}

TEST(Mesh, GridGeometry) {
  MeshNet net(9);  // 3x3
  EXPECT_EQ(net.width(), 3);
  EXPECT_EQ(net.hop_count(0, 0), 0);
  EXPECT_EQ(net.hop_count(0, 1), 1);   // right one
  EXPECT_EQ(net.hop_count(0, 3), 1);   // down one
  EXPECT_EQ(net.hop_count(0, 8), 4);   // opposite corner
  EXPECT_EQ(net.hop_count(2, 6), 4);
}

TEST(Mesh, NonSquareCountsStillRoute) {
  MeshNet net(6);  // 3-wide grid, 2 rows
  EXPECT_EQ(net.width(), 3);
  EXPECT_EQ(net.hop_count(0, 5), 3);  // (0,0) -> (2,1)
}

TEST(Mesh, FartherNodesTakeLonger) {
  MeshConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 1e-5;
  cfg.bytes_per_second = 1e9;
  MeshNet near_net(16, cfg);
  MeshNet far_net(16, cfg);
  const SimTime one = near_net.schedule_transfer(0, 1, 0, 0.0);
  const SimTime six = far_net.schedule_transfer(0, 15, 0, 0.0);
  EXPECT_NEAR(six - one, 5e-5, 1e-12);  // 6 hops vs 1 hop
}

TEST(Mesh, SenderNicSerializes) {
  MeshConfig cfg;
  cfg.startup = 0;
  cfg.per_hop = 0;
  cfg.bytes_per_second = 1e6;
  MeshNet net(4, cfg);
  const SimTime a = net.schedule_transfer(0, 1, 1000, 0.0);
  const SimTime b = net.schedule_transfer(0, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a, 1e-3);
  EXPECT_DOUBLE_EQ(b, 2e-3);
}

TEST(Mesh, MeshSlowerThanHypercubeForFarPairs) {
  // Same per-hop cost: a 16-node mesh's diameter (6) exceeds the
  // hypercube's (4) — topology matters.
  MeshConfig mc;
  mc.startup = 0;
  mc.per_hop = 1e-5;
  mc.bytes_per_second = 1e9;
  HypercubeConfig hc;
  hc.startup = 0;
  hc.per_hop = 1e-5;
  hc.bytes_per_second = 1e9;
  MeshNet mesh(16, mc);
  HypercubeNet cube(16, hc);
  EXPECT_GT(mesh.schedule_transfer(0, 15, 0, 0.0),
            cube.schedule_transfer(0, 15, 0, 0.0));
}

TEST(AllNets, ArrivalNeverBeforeSubmit) {
  SharedBusNet bus;
  HypercubeNet cube(8);
  CrossbarNet xbar(8);
  MeshNet mesh(8);
  IdealNet ideal(1e-6, 1e7);
  for (NetworkModel* net : std::initializer_list<NetworkModel*>{
           &bus, &cube, &xbar, &mesh, &ideal}) {
    for (int i = 0; i < 20; ++i) {
      const SimTime t0 = 0.1 * i;
      EXPECT_GE(net->schedule_transfer(i % 8, (i + 3) % 8, 100 * i, t0), t0);
    }
  }
}

}  // namespace
}  // namespace jade
