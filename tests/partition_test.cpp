// Tests for PartitionedArray — the packaged data-decomposition idiom.
#include <gtest/gtest.h>

#include <numeric>

#include "jade/core/partition.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

TEST(PartitionedArray, EvenSplitCoversRange) {
  Runtime rt;
  PartitionedArray<double> a(rt, 100, 4);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.parts(), 4u);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(a.part_size(p), 25u);
    EXPECT_EQ(a.end(p) - a.begin(p), a.part_size(p));
    EXPECT_EQ(a.part(p).count(), a.part_size(p));
  }
  EXPECT_EQ(a.begin(0), 0u);
  EXPECT_EQ(a.end(3), 100u);
}

TEST(PartitionedArray, UnevenSplitHasNoGaps) {
  Runtime rt;
  PartitionedArray<int> a(rt, 10, 3);
  std::size_t total = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(a.begin(p), total);
    total += a.part_size(p);
    EXPECT_GE(a.part_size(p), 3u);
    EXPECT_LE(a.part_size(p), 4u);
  }
  EXPECT_EQ(total, 10u);
}

TEST(PartitionedArray, PartOfIsConsistent) {
  Runtime rt;
  for (std::size_t parts : {1u, 3u, 7u, 50u}) {
    PartitionedArray<int> a(rt, 50, parts);
    for (std::size_t i = 0; i < 50; ++i) {
      const std::size_t p = a.part_of(i);
      EXPECT_GE(i, a.begin(p));
      EXPECT_LT(i, a.end(p));
    }
  }
}

TEST(PartitionedArray, PutGetRoundTrip) {
  Runtime rt;
  PartitionedArray<double> a(rt, 37, 5);
  std::vector<double> data(37);
  std::iota(data.begin(), data.end(), 1.0);
  a.put(rt, data);
  EXPECT_EQ(a.get(rt), data);
}

TEST(PartitionedArray, SinglePartAndFullSplitEdges) {
  Runtime rt;
  PartitionedArray<int> one(rt, 8, 1);
  EXPECT_EQ(one.parts(), 1u);
  EXPECT_EQ(one.part_size(0), 8u);
  PartitionedArray<int> full(rt, 8, 8);
  for (std::size_t p = 0; p < 8; ++p) EXPECT_EQ(full.part_size(p), 1u);
}

TEST(PartitionedArray, DrivesPerPartTasksAcrossEngines) {
  for (EngineKind kind :
       {EngineKind::kSerial, EngineKind::kThread, EngineKind::kSim}) {
    RuntimeConfig cfg;
    cfg.engine = kind;
    cfg.threads = 3;
    if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(3);
    Runtime rt(std::move(cfg));
    PartitionedArray<double> a(rt, 64, 6);
    rt.run([&](TaskContext& ctx) {
      for (std::size_t p = 0; p < a.parts(); ++p) {
        auto ref = a.part(p);
        const double base = static_cast<double>(a.begin(p));
        ctx.withonly([&](AccessDecl& d) { d.wr(ref); },
                     [ref, base](TaskContext& t) {
                       auto s = t.write(ref);
                       for (std::size_t i = 0; i < s.size(); ++i)
                         s[i] = base + static_cast<double>(i);
                     });
      }
    });
    const auto out = a.get(rt);
    for (std::size_t i = 0; i < 64; ++i)
      EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i));
  }
}

TEST(PartitionedArray, InvalidPartCountRejected) {
  Runtime rt;
  EXPECT_THROW(PartitionedArray<int>(rt, 4, 0), InternalError);
  EXPECT_THROW(PartitionedArray<int>(rt, 4, 5), InternalError);
}

}  // namespace
}  // namespace jade
