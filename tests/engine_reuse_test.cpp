// Engine reuse: multiple sequential graphs on one engine instance.  The
// server keeps one engine resident and feeds it a stream of programs, so
// run() must leave the engine ready for the next graph — serializer
// re-rooted, governor counters zeroed, stats fresh — while shared objects
// and their contents persist across runs.
#include <gtest/gtest.h>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig config_for(EngineKind kind) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = 3;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(3);
  return cfg;
}

class EngineReuseTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineReuseTest, SequentialGraphsProduceIndependentResults) {
  Runtime rt(config_for(GetParam()));
  auto v = rt.alloc<std::uint64_t>(8, "v");
  for (std::uint64_t round = 1; round <= 3; ++round) {
    std::vector<std::uint64_t> init(8, round);
    rt.put(v, std::span<const std::uint64_t>(init));
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 8; ++i) {
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                     [v, i](TaskContext& t) {
                       auto h = t.read_write(v);
                       h[static_cast<std::size_t>(i)] *= 10;
                     });
      }
    });
    const std::vector<std::uint64_t> out = rt.get(v);
    for (std::uint64_t x : out) EXPECT_EQ(x, round * 10);
    // Fresh per-run stats: this round's graph only.
    EXPECT_EQ(rt.stats().tasks_created, 8u);
  }
}

TEST_P(EngineReuseTest, ObjectContentsPersistAcrossRuns) {
  Runtime rt(config_for(GetParam()));
  auto acc = rt.alloc<std::uint64_t>(1, "acc");
  for (int round = 0; round < 4; ++round) {
    rt.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(acc); },
                   [acc](TaskContext& t) { t.read_write(acc)[0] += 1; });
    });
  }
  EXPECT_EQ(rt.get(acc)[0], 4u);
}

TEST_P(EngineReuseTest, ThrottledGraphReusesGovernorState) {
  RuntimeConfig cfg = config_for(GetParam());
  cfg.sched.throttle.enabled = true;
  cfg.sched.throttle.high_water = 4;
  cfg.sched.throttle.low_water = 2;
  Runtime rt(cfg);
  auto v = rt.alloc<std::uint64_t>(1, "v");
  for (int round = 0; round < 2; ++round) {
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < 64; ++i) {
        ctx.withonly([&](AccessDecl& d) { d.cm(v); },
                     [v](TaskContext& t) { t.commute(v)[0] += 1; });
      }
    });
  }
  EXPECT_EQ(rt.get(v)[0], 128u);
}

TEST_P(EngineReuseTest, AllocationBetweenRuns) {
  Runtime rt(config_for(GetParam()));
  auto a = rt.alloc<std::uint64_t>(1, "a");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.wr(a); },
                 [a](TaskContext& t) { t.write(a)[0] = 7; });
  });
  auto b = rt.alloc<std::uint64_t>(1, "b");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd(a); d.wr(b); },
                 [a, b](TaskContext& t) { t.write(b)[0] = t.read(a)[0] + 1; });
  });
  EXPECT_EQ(rt.get(b)[0], 8u);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineReuseTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

TEST(EngineReuse, FaultInjectedSimEngineRejectsSecondRun) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::mica(4);
  cfg.fault.enabled = true;
  cfg.fault.seed = 42;
  Runtime rt(cfg);
  rt.run([](TaskContext&) {});
  EXPECT_THROW(rt.run([](TaskContext&) {}), ConfigError);
}

TEST(EngineReuse, SimVirtualClockMonotonicAcrossRuns) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(2);
  Runtime rt(cfg);
  auto v = rt.alloc<double>(1, "v");
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   t.read_write(v)[0] += 1;
                   t.charge(100.0);
                 });
  });
  const SimTime first = rt.sim_duration();
  EXPECT_GT(first, 0.0);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                 [v](TaskContext& t) {
                   t.read_write(v)[0] += 1;
                   t.charge(100.0);
                 });
  });
  EXPECT_GT(rt.sim_duration(), first);
  EXPECT_EQ(rt.get(v)[0], 2.0);
}

}  // namespace
}  // namespace jade
