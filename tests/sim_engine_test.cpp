// SimEngine-specific tests: virtual time, object motion (move/copy/
// invalidate), heterogeneous conversion, locality, latency hiding, speed
// scaling — the mechanisms of the paper's Sections 3.3 and 5.
#include <gtest/gtest.h>

#include "jade/core/runtime.hpp"
#include "jade/engine/sim_engine.hpp"
#include "jade/mach/presets.hpp"

namespace jade {
namespace {

RuntimeConfig sim_config(ClusterConfig cluster, SchedPolicy sched = {}) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = std::move(cluster);
  cfg.sched = sched;
  return cfg;
}

TEST(SimEngineTime, ChargeAdvancesVirtualClockByMachineSpeed) {
  auto cluster = presets::ideal(1);
  cluster.machines[0].ops_per_second = 1e6;
  cluster.task_dispatch_overhead = 0;
  cluster.task_create_overhead = 0;
  Runtime rt(sim_config(cluster));
  auto v = rt.alloc<int>(1);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.wr(v); },
                 [v](TaskContext& t) {
                   t.charge(2e6);  // 2 seconds at 1e6 ops/s
                   t.write(v)[0] = 1;
                 });
  });
  EXPECT_NEAR(rt.sim_duration(), 2.0, 1e-6);
}

TEST(SimEngineTime, FasterMachineFinishesSooner) {
  auto run_at = [](double ops) {
    auto cluster = presets::ideal(1);
    cluster.machines[0].ops_per_second = ops;
    Runtime rt(sim_config(cluster));
    auto v = rt.alloc<int>(1);
    rt.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.wr(v); },
                   [v](TaskContext& t) {
                     t.charge(1e7);
                     t.write(v)[0] = 1;
                   });
    });
    return rt.sim_duration();
  };
  EXPECT_GT(run_at(1e6), 2.0 * run_at(1e7));
}

TEST(SimEngineTime, IndependentTasksOverlapAcrossMachines) {
  auto make = [](int machines) {
    auto cluster = presets::ideal(machines);
    cluster.task_dispatch_overhead = 0;
    cluster.task_create_overhead = 0;
    return cluster;
  };
  auto elapsed = [&](int machines) {
    Runtime rt(sim_config(make(machines)));
    std::vector<SharedRef<int>> objs;
    for (int i = 0; i < 8; ++i) objs.push_back(rt.alloc<int>(1));
    rt.run([&](TaskContext& ctx) {
      for (auto o : objs) {
        ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                     [o](TaskContext& t) {
                       t.charge(1e7);  // 1 second each
                       t.write(o)[0] = 1;
                     });
      }
    });
    return rt.sim_duration();
  };
  const double t1 = elapsed(1);
  const double t8 = elapsed(8);
  EXPECT_NEAR(t1, 8.0, 0.2);
  EXPECT_LT(t8, t1 / 4.0);  // near-linear speedup for independent work
}

TEST(SimEngineMotion, WriteMovesObjectReadCopies) {
  auto cluster = presets::ideal(2);
  Runtime rt(sim_config(cluster));
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  auto v = rt.alloc<double>(64, "v", /*home=*/0);
  // One writer (forced to machine 1) then two readers (one per machine).
  rt.run([&](TaskContext& ctx) {
    ctx.withonly_on(1, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v](TaskContext& t) { t.read_write(v)[0] = 5.0; });
    ctx.withonly_on(0, [&](AccessDecl& d) { d.rd(v); },
                    [v](TaskContext& t) { (void)t.read(v)[0]; });
  });
  // The write moved v to machine 1; the read replicated it back to 0.
  EXPECT_EQ(rt.stats().object_moves, 1u);
  EXPECT_GE(rt.stats().object_copies, 1u);
  EXPECT_TRUE(eng->directory().present(v.id(), 0));
  EXPECT_TRUE(eng->directory().present(v.id(), 1));
  EXPECT_EQ(eng->directory().owner(v.id()), 1);
}

TEST(SimEngineMotion, WriterInvalidatesReplicas) {
  auto cluster = presets::ideal(3);
  Runtime rt(sim_config(cluster));
  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  auto v = rt.alloc<double>(16, "v", 0);
  rt.run([&](TaskContext& ctx) {
    // Readers on machines 1 and 2 create replicas.
    for (MachineId m : {1, 2}) {
      ctx.withonly_on(m, [&](AccessDecl& d) { d.rd(v); },
                      [v](TaskContext& t) { (void)t.read(v)[0]; });
    }
    // Then a writer on machine 0 invalidates them.
    ctx.withonly_on(0, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v](TaskContext& t) { t.read_write(v)[0] = 1.0; });
  });
  EXPECT_EQ(rt.stats().invalidations, 2u);
  EXPECT_FALSE(eng->directory().present(v.id(), 1));
  EXPECT_FALSE(eng->directory().present(v.id(), 2));
  EXPECT_TRUE(eng->directory().present(v.id(), 0));
}

TEST(SimEngineMotion, SharedMemoryPlatformMovesNothing) {
  Runtime rt(sim_config(presets::dash(4)));
  auto v = rt.alloc<double>(256, "v");
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 8; ++i) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [v](TaskContext& t) { t.read_write(v)[0] += 1.0; });
    }
  });
  EXPECT_EQ(rt.stats().messages, 0u);
  EXPECT_EQ(rt.stats().object_moves, 0u);
  EXPECT_EQ(rt.stats().object_copies, 0u);
  EXPECT_DOUBLE_EQ(rt.get(v)[0], 8.0);
}

TEST(SimEngineHetero, MixedEndianTransfersConvert) {
  // hetero_workstations alternates little- and big-endian machines; moving
  // doubles between them must run the format conversion.
  Runtime rt(sim_config(presets::hetero_workstations(2)));
  auto v = rt.alloc<double>(32, "v", /*home=*/0);  // on little-endian mips0
  rt.run([&](TaskContext& ctx) {
    ctx.withonly_on(1, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v](TaskContext& t) {
                      auto h = t.read_write(v);
                      for (std::size_t i = 0; i < h.size(); ++i)
                        h[i] = static_cast<double>(i) + 0.25;
                    });
  });
  EXPECT_EQ(rt.stats().scalars_converted, 32u);
  // Values survive the conversion round-trip intact.
  const auto out = rt.get(v);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 0.25);
}

TEST(SimEngineHetero, SameEndianTransfersDoNotConvert) {
  Runtime rt(sim_config(presets::ipsc860(2)));  // homogeneous
  auto v = rt.alloc<double>(32, "v", 0);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly_on(1, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v](TaskContext& t) { t.read_write(v)[0] = 1.0; });
  });
  EXPECT_EQ(rt.stats().scalars_converted, 0u);
  EXPECT_GE(rt.stats().object_moves, 1u);
}

TEST(SimEngineSched, LocalityKeepsTaskNearItsData) {
  auto cluster = presets::ideal(4);
  SchedPolicy sched;
  sched.locality = true;
  Runtime rt(sim_config(cluster, sched));
  auto big = rt.alloc<double>(4096, "big", /*home=*/2);
  rt.run([&](TaskContext& ctx) {
    ctx.withonly([&](AccessDecl& d) { d.rd_wr(big); },
                 [big](TaskContext& t) {
                   t.read_write(big)[0] = 1.0;
                 });
  });
  // With the root busy on machine 0 and 4 KB of data on machine 2, the
  // locality heuristic sends the task to machine 2 — no object motion.
  EXPECT_EQ(rt.stats().object_moves, 0u);
}

TEST(SimEngineSched, PlacementPinsTask) {
  Runtime rt(sim_config(presets::ideal(4)));
  auto v = rt.alloc<int>(4, "v", 3);
  MachineId observed = -1;
  rt.run([&](TaskContext& ctx) {
    ctx.withonly_on(2, [&](AccessDecl& d) { d.rd_wr(v); },
                    [v, &observed](TaskContext& t) {
                      observed = t.machine();
                      t.read_write(v)[0] = 1;
                    });
  });
  EXPECT_EQ(observed, 2);
  EXPECT_EQ(rt.stats().object_moves, 1u);  // v had to come to machine 2
}

TEST(SimEngineSched, LatencyHidingOverlapsFetchWithExecution) {
  // One slow remote fetch + independent compute tasks: with 2 contexts per
  // machine the fetch overlaps computation; with 1 it still must not
  // serialize other machines.  Compare 2-context vs 1-context finish times
  // on a single-machine-pair cluster.
  auto make_cluster = [] {
    auto c = presets::ideal(2);
    c.ideal.latency = 0.5;  // very slow network
    c.ideal.bytes_per_second = 1e9;
    c.task_dispatch_overhead = 0;
    c.task_create_overhead = 0;
    return c;
  };
  auto elapsed = [&](int contexts) {
    SchedPolicy sched;
    sched.contexts_per_machine = contexts;
    Runtime rt(sim_config(make_cluster(), sched));
    auto remote = rt.alloc<double>(8, "remote", 1);
    auto local0 = rt.alloc<double>(8, "l0", 0);
    auto local1 = rt.alloc<double>(8, "l1", 0);
    rt.run([&](TaskContext& ctx) {
      // Fetch-bound task pinned to machine 0 (data on machine 1).
      ctx.withonly_on(0, [&](AccessDecl& d) { d.rd(remote); },
                      [remote](TaskContext& t) { (void)t.read(remote)[0]; });
      // Compute-bound tasks for machine 0.
      for (auto o : {local0, local1}) {
        ctx.withonly_on(0, [&](AccessDecl& d) { d.rd_wr(o); },
                        [o](TaskContext& t) {
                          t.charge(1e6);  // 0.1 s at 1e7 ops/s
                          t.read_write(o)[0] = 1.0;
                        });
      }
    });
    return rt.sim_duration();
  };
  const double with_hiding = elapsed(2);
  const double without = elapsed(1);
  EXPECT_LT(with_hiding, without);
}

TEST(SimEngineStats, BusySecondsAndMigrationsTracked) {
  Runtime rt(sim_config(presets::ideal(2)));
  std::vector<SharedRef<int>> objs;
  for (int i = 0; i < 6; ++i) objs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (auto o : objs)
      ctx.withonly([&](AccessDecl& d) { d.wr(o); },
                   [o](TaskContext& t) {
                     t.charge(1e6);
                     t.write(o)[0] = 1;
                   });
  });
  ASSERT_EQ(rt.stats().machine_busy_seconds.size(), 2u);
  EXPECT_GT(rt.stats().machine_busy_seconds[0], 0.0);
  EXPECT_GT(rt.stats().machine_busy_seconds[1], 0.0);
  EXPECT_GT(rt.stats().tasks_migrated, 0u);
  EXPECT_GT(rt.sim_duration(), 0.0);
}

TEST(SimEngineDeterminism, IdenticalRunsProduceIdenticalVirtualTimes) {
  auto run_once = [] {
    Runtime rt(sim_config(presets::mica(4)));
    auto v = rt.alloc<double>(128, "v");
    std::vector<SharedRef<double>> parts;
    for (int i = 0; i < 8; ++i) parts.push_back(rt.alloc<double>(64));
    rt.run([&](TaskContext& ctx) {
      for (auto p : parts) {
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(p); },
                     [p](TaskContext& t) {
                       t.charge(5e5);
                       t.read_write(p)[0] += 1.0;
                     });
      }
      ctx.withonly(
          [&](AccessDecl& d) {
            d.rd_wr(v);
            for (auto p : parts) d.rd(p);
          },
          [v, parts](TaskContext& t) {
            double s = 0;
            for (auto p : parts) s += t.read(p)[0];
            t.read_write(v)[0] = s;
          });
    });
    return rt.sim_duration();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimEngineConfig, RejectsBadContexts) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(2);
  cfg.sched.contexts_per_machine = 0;
  EXPECT_THROW(Runtime rt(cfg), ConfigError);
}

}  // namespace
}  // namespace jade
