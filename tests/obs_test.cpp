// Unit tests for the observability subsystem (src/jade/obs): the
// ring-buffered trace recorder, the emission facade, the metrics registry,
// the Chrome trace exporter, and the engine integration contracts
// (zero-cost-when-disabled, real worker ids on the thread engine).
#include <gtest/gtest.h>

#include <sstream>

#include "jade/core/runtime.hpp"
#include "jade/obs/chrome_trace.hpp"
#include "jade/obs/metrics.hpp"
#include "jade/obs/sink.hpp"
#include "jade/obs/tracer.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

using obs::EventKind;
using obs::Subsystem;
using obs::TraceEvent;
using obs::TraceRecorder;
using obs::Tracer;

// ---------------------------------------------------------------- recorder

TEST(TraceRecorder, AssignsMonotonicSeqInRecordOrder) {
  TraceRecorder rec;
  Tracer t;
  t.attach(&rec, nullptr);
  for (int i = 0; i < 5; ++i)
    t.instant(Subsystem::kEngine, "x", static_cast<std::uint64_t>(i), 0);
  const auto evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 5u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, i);
    EXPECT_EQ(evs[i].id, i);
  }
}

TEST(TraceRecorder, RingDropsOldestAndCountsDrops) {
  TraceRecorder rec(4);
  Tracer t;
  t.attach(&rec, nullptr);
  for (int i = 0; i < 10; ++i)
    t.instant(Subsystem::kEngine, "x", static_cast<std::uint64_t>(i), 0);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // Newest four survive, oldest first.
  EXPECT_EQ(evs.front().id, 6u);
  EXPECT_EQ(evs.back().id, 9u);
}

TEST(TraceRecorder, ClearEmptiesRingButKeepsLifetimeTotals) {
  TraceRecorder rec(8);
  Tracer t;
  t.attach(&rec, nullptr);
  t.instant(Subsystem::kEngine, "x", 1, 0);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 1u);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, DisabledTracerEmitsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  // No sink attached: every emit must be a no-op, not a crash.
  t.span_begin(Subsystem::kEngine, "task", 1, 0);
  t.span_end(Subsystem::kEngine, "task", 1, 0);
  t.instant(Subsystem::kNet, "net.drop", 1, 0);
  t.counter(Subsystem::kEngine, "c", 0, 1.0);
}

TEST(Tracer, ClockStampsEventsAndAtVariantsOverrideIt) {
  TraceRecorder rec;
  Tracer t;
  SimTime now = 1.5;
  t.attach(&rec, [&now] { return now; });
  t.span_begin(Subsystem::kEngine, "task", 7, 2, "blk");
  now = 2.25;
  t.span_end(Subsystem::kEngine, "task", 7, 2, 42.0);
  t.instant_at(9.75, Subsystem::kStore, "store.move", 3, 1, 128.0);
  const auto evs = rec.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].kind, EventKind::kSpanBegin);
  EXPECT_DOUBLE_EQ(evs[0].ts, 1.5);
  EXPECT_EQ(evs[0].detail, "blk");
  EXPECT_EQ(evs[0].machine, 2);
  EXPECT_EQ(evs[1].kind, EventKind::kSpanEnd);
  EXPECT_DOUBLE_EQ(evs[1].ts, 2.25);
  EXPECT_DOUBLE_EQ(evs[1].value, 42.0);
  EXPECT_EQ(evs[2].kind, EventKind::kInstant);
  EXPECT_DOUBLE_EQ(evs[2].ts, 9.75);  // explicit timestamp wins
  EXPECT_EQ(evs[2].cat, Subsystem::kStore);
}

TEST(Tracer, WallClockOffByDefault) {
  TraceRecorder rec;
  Tracer t;
  t.attach(&rec, nullptr);
  t.instant(Subsystem::kEngine, "x", 0, 0);
  EXPECT_DOUBLE_EQ(rec.snapshot().at(0).wall_ms, 0.0);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, CountersAreFindOrCreateAndStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("engine.tasks_created");
  a.add(3);
  reg.counter("engine.tasks_created").add(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_TRUE(reg.has("engine.tasks_created"));
  EXPECT_FALSE(reg.has("engine.nope"));
}

TEST(Metrics, NameIdentifiesExactlyOneKind) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), InternalError);
  EXPECT_THROW(reg.histogram("x"), InternalError);
}

TEST(Metrics, CounterSetIsInsertionOrderedAndPrefixFiltered) {
  obs::MetricsRegistry reg;
  reg.counter("net.messages").add(7);
  reg.counter("engine.tasks_created").add(2);
  reg.gauge("engine.duration").set(3.9);
  reg.counter("net.bytes_sent").add(100);
  const CounterSet all = reg.counters();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.name(0), "net.messages");
  EXPECT_EQ(all.name(1), "engine.tasks_created");
  EXPECT_EQ(all.name(2), "engine.duration");
  EXPECT_EQ(all.value(2), 3u);  // gauges rounded down
  const CounterSet net = reg.counters("net.");
  ASSERT_EQ(net.size(), 2u);
  EXPECT_EQ(net.value("net.messages"), 7u);
  EXPECT_EQ(net.value("net.bytes_sent"), 100u);
}

TEST(Metrics, HistogramStatisticsAndQuantiles) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  // Log-bucketed: the median is an estimate; demand the right ballpark.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 90.0);
}

TEST(Metrics, SummaryIsDeterministicText) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.histogram("h").observe(2.0);
  std::ostringstream s1, s2;
  reg.print_summary(s1);
  reg.print_summary(s2);
  EXPECT_EQ(s1.str(), s2.str());
  EXPECT_NE(s1.str().find('a'), std::string::npos);
}

// ---------------------------------------------------------- chrome export

TEST(ChromeTrace, EscapesJsonStrings) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("l1\nl2\t"), "l1\\nl2\\t");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ChromeTrace, ExportsSpansInstantsCountersWithSchema) {
  TraceRecorder rec;
  Tracer t;
  SimTime now = 0.0;
  t.attach(&rec, [&now] { return now; });
  t.span_begin(Subsystem::kEngine, "task", 1, 0, "blk \"q\"");
  now = 0.5;
  t.span_end(Subsystem::kEngine, "task", 1, 0, 5e5);
  t.instant(Subsystem::kNet, "net.drop", 2, 1, 64.0);
  t.counter(Subsystem::kEngine, "queue_depth", 0, 3.0);

  std::ostringstream os;
  const auto evs = rec.snapshot();
  obs::write_chrome_trace(os, evs);
  const std::string out = os.str();

  // Object form with a traceEvents array.
  EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(out.find("\"cat\":\"net\""), std::string::npos);
  // Detail strings go through json_escape.
  EXPECT_NE(out.find("blk \\\"q\\\""), std::string::npos);
  EXPECT_EQ(out.find("blk \"q\""), std::string::npos);
  // ts is microseconds: the span end at 0.5 virtual seconds.
  EXPECT_NE(out.find("\"ts\":500000"), std::string::npos);
  // Balanced braces/brackets — a cheap well-formedness check.
  long depth = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') in_str = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

TEST(ChromeTrace, TextSummaryCountsSpansOnceByEnd) {
  TraceRecorder rec;
  Tracer t;
  t.attach(&rec, nullptr);
  t.span_begin(Subsystem::kEngine, "task", 1, 0);
  t.span_end(Subsystem::kEngine, "task", 1, 0);
  t.span_begin(Subsystem::kEngine, "task", 2, 0);  // unclosed
  t.instant(Subsystem::kNet, "net.drop", 1, 0);
  t.instant(Subsystem::kNet, "net.drop", 2, 0);
  const auto evs = rec.snapshot();
  const std::string summary = obs::trace_text_summary(evs);
  EXPECT_NE(summary.find("task"), std::string::npos);
  EXPECT_NE(summary.find("net.drop"), std::string::npos);
  // Deterministic across calls.
  EXPECT_EQ(summary, obs::trace_text_summary(evs));
}

// ----------------------------------------------------- engine integration

TEST(RuntimeObs, TracingOffByDefaultAndExportRefused) {
  Runtime rt;
  rt.run([](TaskContext& ctx) {
    ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {});
  });
  EXPECT_EQ(rt.trace(), nullptr);
  EXPECT_TRUE(rt.trace_events().empty());
  std::ostringstream os;
  EXPECT_THROW(rt.write_chrome_trace(os), ConfigError);
}

TEST(RuntimeObs, SerialEngineRecordsTaskLifecycle) {
  RuntimeConfig cfg;
  cfg.obs.trace = true;
  Runtime rt(std::move(cfg));
  auto v = rt.alloc<double>(4);
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 3; ++i)
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [](TaskContext& t) { t.charge(100); });
  });
  ASSERT_NE(rt.trace(), nullptr);
  const auto evs = rt.trace_events();
  int created = 0, begun = 0, ended = 0;
  for (const auto& e : evs) {
    if (std::string_view(e.name) == "task.created") ++created;
    if (std::string_view(e.name) == "task" &&
        e.kind == EventKind::kSpanBegin)
      ++begun;
    if (std::string_view(e.name) == "task" && e.kind == EventKind::kSpanEnd)
      ++ended;
  }
  EXPECT_EQ(created, 4);  // root + 3
  EXPECT_EQ(begun, 4);
  EXPECT_EQ(ended, 4);
  // RuntimeStats published into the registry under canonical names.
  EXPECT_EQ(rt.metrics().counters().value("engine.tasks_created"),
            rt.stats().tasks_created);
}

TEST(RuntimeObs, ThreadEngineReportsRealWorkerIds) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 4;
  cfg.obs.trace = true;
  Runtime rt(std::move(cfg));
  std::vector<SharedRef<double>> objs;
  for (int i = 0; i < 16; ++i) objs.push_back(rt.alloc<double>(8));
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 64; ++i) {
      auto o = objs[static_cast<std::size_t>(i) % objs.size()];
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                   [o](TaskContext& t) { t.read_write(o)[0] += 1.0; });
    }
  });
  int task_spans = 0;
  for (const auto& e : rt.trace_events()) {
    if (std::string_view(e.name) != "task" ||
        e.kind != EventKind::kSpanEnd)
      continue;
    ++task_spans;
    EXPECT_GE(e.machine, 0);
    EXPECT_LT(e.machine, 4);
  }
  EXPECT_EQ(task_spans, 64);  // the root body runs inline in run()
}

TEST(RuntimeObs, ThreadEngineSingleWorkerPinsEverythingToZero) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kThread;
  cfg.threads = 1;
  cfg.obs.trace = true;
  Runtime rt(std::move(cfg));
  auto v = rt.alloc<double>(8);
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 8; ++i)
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                   [v](TaskContext& t) { t.read_write(v)[0] += 1.0; });
  });
  for (const auto& e : rt.trace_events())
    if (std::string_view(e.name) == "task") EXPECT_EQ(e.machine, 0);
}

TEST(RuntimeObs, TraceCapacityIsConfigurable) {
  RuntimeConfig cfg;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 8;
  Runtime rt(std::move(cfg));
  auto v = rt.alloc<double>(4);
  rt.run([&](TaskContext& ctx) {
    for (int i = 0; i < 32; ++i)
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); }, [](TaskContext&) {});
  });
  ASSERT_NE(rt.trace(), nullptr);
  EXPECT_EQ(rt.trace()->capacity(), 8u);
  EXPECT_LE(rt.trace_events().size(), 8u);
  EXPECT_GT(rt.trace()->dropped(), 0u);
}

}  // namespace
}  // namespace jade
