// Determinism and equivalence contracts of the trace stream.
//
// 1. Two SimEngine runs of the same program on the same cluster export
//    byte-identical Chrome JSON — also with the fault layer armed and
//    crashing machines, since fault injection is seeded (PR 1).
// 2. The trace-derived task timeline (obs::timeline_from_trace) matches the
//    legacy in-engine recorder (SchedPolicy::record_timeline) field for
//    field, so the Gantt tooling can consume either source.
#include <gtest/gtest.h>

#include <sstream>

#include "jade/apps/cholesky.hpp"
#include "jade/core/runtime.hpp"
#include "jade/engine/sim_engine.hpp"
#include "jade/mach/presets.hpp"
#include "jade/model/planner.hpp"
#include "jade/obs/chrome_trace.hpp"
#include "jade/obs/timeline_view.hpp"

namespace jade {
namespace {

RuntimeConfig sim_config(int machines, bool record_timeline = false) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  cfg.obs.trace = true;
  cfg.sched.record_timeline = record_timeline;
  return cfg;
}

/// A workload that exercises engine, store, and network events: the paper's
/// sparse Cholesky example, which migrates tasks and moves/copies objects.
void run_cholesky(Runtime& rt) {
  const auto a = apps::paper_example_matrix();
  auto jm = apps::upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
  (void)apps::download_matrix(rt, jm);
}

std::string export_trace(Runtime& rt) {
  std::ostringstream os;
  rt.write_chrome_trace(os);
  return os.str();
}

TEST(TraceDeterminism, SameRunExportsByteIdenticalJson) {
  std::string first, second;
  {
    Runtime rt(sim_config(4));
    run_cholesky(rt);
    first = export_trace(rt);
  }
  {
    Runtime rt(sim_config(4));
    run_cholesky(rt);
    second = export_trace(rt);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminism, ByteIdenticalUnderSeededFaultInjection) {
  auto faulty_config = [] {
    RuntimeConfig cfg = sim_config(4);
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xdecaf;
    // Explicit crash mid-factorization (the fault-free run takes ~3.3 ms of
    // virtual time), plus message loss: recovery and retransmission both
    // land in the trace, and both must replay identically.
    cfg.fault.crashes = {{1, 1e-3}};
    cfg.fault.drop_probability = 0.05;
    return cfg;
  };
  std::string first, second;
  {
    Runtime rt(faulty_config());
    run_cholesky(rt);
    first = export_trace(rt);
  }
  {
    Runtime rt(faulty_config());
    run_cholesky(rt);
    second = export_trace(rt);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The fault layer actually fired: its events are in the export.
  EXPECT_NE(first.find("\"cat\":\"ft\""), std::string::npos);
}

// --- The Planner seam (RuntimeConfig::planner) ------------------------------

TEST(TraceDeterminism, PlannerSeamDefaultMatchesExplicitHeuristicByteForByte) {
  // Routing every placement decision through the Planner interface must not
  // perturb a single byte of the export: a null planner (the shared default)
  // and an explicitly constructed HeuristicPlanner replay the same
  // fault-armed cholesky identically — placement choices, sched.place
  // explain strings, recovery, everything.
  auto config = [](std::shared_ptr<const model::Planner> planner) {
    RuntimeConfig cfg = sim_config(4);
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xdecaf;
    cfg.fault.crashes = {{1, 1e-3}};
    cfg.fault.drop_probability = 0.05;
    cfg.planner = std::move(planner);
    return cfg;
  };
  std::string with_default, with_explicit;
  {
    Runtime rt(config(nullptr));
    run_cholesky(rt);
    with_default = export_trace(rt);
  }
  {
    Runtime rt(config(std::make_shared<model::HeuristicPlanner>()));
    run_cholesky(rt);
    with_explicit = export_trace(rt);
  }
  EXPECT_FALSE(with_default.empty());
  EXPECT_EQ(with_default, with_explicit);
  // The seam's explain strings are in the stream (locality scoring visible).
  EXPECT_NE(with_default.find("sched.place"), std::string::npos);
  EXPECT_NE(with_default.find("chosen="), std::string::npos);
}

// --- Speculation (SchedPolicy::spec) must preserve the contract ------------

RuntimeConfig spec_config(int machines) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  auto cluster = presets::ideal(machines);
  cluster.task_dispatch_overhead = 0;
  cluster.task_create_overhead = 0;
  cfg.cluster = std::move(cluster);
  cfg.sched.spec.enabled = true;
  // Round 0 aborts one bet per solver against ctrl; keep the conflict
  // history below the throttle so later rounds still speculate and commit.
  cfg.sched.spec.conflict_limit = 16;
  cfg.obs.trace = true;
  return cfg;
}

/// Pipeline with conservative rd_wr stages; round 0's write materializes
/// from a non-speculative runner (the first task always dispatches
/// normally), so the run exercises both spec.commit and spec.abort.
std::string run_spec_pipeline(RuntimeConfig cfg,
                              RuntimeStats* stats = nullptr) {
  Runtime rt(std::move(cfg));
  auto ctrl = rt.alloc<int>(1);
  std::vector<SharedRef<int>> outs;
  for (int i = 0; i < 4; ++i) outs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < 3; ++r) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [ctrl, r](TaskContext& t) {
                     t.charge(1e7);
                     if (r == 0) t.read_write(ctrl)[0] = 9;
                   });
      for (auto out : outs) {
        ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                     [ctrl, out](TaskContext& t) {
                       t.charge(1e6);
                       t.write(out)[0] = t.read(ctrl)[0] + 1;
                     });
      }
    }
  });
  if (stats != nullptr) *stats = rt.stats();
  return export_trace(rt);
}

TEST(TraceDeterminism, ByteIdenticalWithSpeculationEnabled) {
  RuntimeStats stats;
  const std::string first = run_spec_pipeline(spec_config(6), &stats);
  const std::string second = run_spec_pipeline(spec_config(6));
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The run genuinely speculated, and both outcomes are in the export.
  EXPECT_GT(stats.spec_committed, 0u);
  EXPECT_GT(stats.spec_aborted, 0u);
  EXPECT_NE(first.find("spec.commit"), std::string::npos);
  EXPECT_NE(first.find("spec.abort"), std::string::npos);
  // With the policy off, the identical program leaves no spec events behind
  // (the trace stays byte-compatible with pre-speculation builds).
  RuntimeConfig off = spec_config(6);
  off.sched.spec = SpecConfig{};
  EXPECT_EQ(run_spec_pipeline(std::move(off)).find("spec."),
            std::string::npos);
}

TEST(TraceDeterminism, ByteIdenticalWithFaultsDuringSpeculation) {
  // A machine crashes mid-pipeline while speculations are in flight; the
  // dark machine's bets are force-aborted, survivors re-run — and the whole
  // story must still replay byte-identically from the same seed.
  auto config = [] {
    RuntimeConfig cfg = spec_config(6);
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xabad1dea;
    cfg.fault.crashes = {{1, 1.5}};
    return cfg;
  };
  RuntimeStats stats;
  const std::string first = run_spec_pipeline(config(), &stats);
  const std::string second = run_spec_pipeline(config());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_GT(stats.spec_started, 0u);
  EXPECT_NE(first.find("\"cat\":\"ft\""), std::string::npos);
}

TEST(TraceDeterminism, ByteIdenticalWithCommProtocolOptimizationsAndFaults) {
  // The reworked data-movement path (request combining, replica reuse,
  // coalesced invalidation, conversion caching, deferred prefetch — all on
  // by default) must preserve the determinism contract: same seed, same
  // byte-identical export, with the fault layer crashing a machine and
  // dropping messages on a mixed-endian cluster.
  auto config = [] {
    RuntimeConfig cfg = sim_config(6);
    cfg.cluster = presets::hetero_workstations(6);
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xfeedbee;
    cfg.fault.crashes = {{1, 1e-3}};
    cfg.fault.drop_probability = 0.04;
    return cfg;
  };
  std::string first, second;
  apps::SparseMatrix result_first, result_second;
  {
    Runtime rt(config());
    const auto a = apps::paper_example_matrix();
    auto jm = apps::upload_matrix(rt, a);
    rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
    result_first = apps::download_matrix(rt, jm);
    first = export_trace(rt);
  }
  {
    Runtime rt(config());
    const auto a = apps::paper_example_matrix();
    auto jm = apps::upload_matrix(rt, a);
    rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
    result_second = apps::download_matrix(rt, jm);
    second = export_trace(rt);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(result_first.cols, result_second.cols);
}

TEST(TraceDeterminism, LegacyProtocolMatchesOptimizedResults) {
  // Turning every CommConfig flag off reproduces the legacy per-object
  // protocol; the factored matrix must be bit-identical either way (only
  // the simulated communication cost may differ), and each configuration
  // must stay internally deterministic.
  auto config = [](bool optimized) {
    RuntimeConfig cfg = sim_config(6);
    cfg.cluster = presets::hetero_workstations(6);
    if (!optimized) cfg.sched.comm = CommConfig{false, false, false, false,
                                                false};
    return cfg;
  };
  auto run_once = [](RuntimeConfig cfg, apps::SparseMatrix* out) {
    Runtime rt(std::move(cfg));
    const auto a = apps::paper_example_matrix();
    auto jm = apps::upload_matrix(rt, a);
    rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
    *out = apps::download_matrix(rt, jm);
    return export_trace(rt);
  };
  apps::SparseMatrix legacy, optimized, optimized2;
  const std::string legacy_trace = run_once(config(false), &legacy);
  const std::string opt_trace = run_once(config(true), &optimized);
  const std::string opt_trace2 = run_once(config(true), &optimized2);
  EXPECT_EQ(legacy.cols, optimized.cols);
  EXPECT_EQ(opt_trace, opt_trace2);
  // The protocols genuinely differ on the wire, so the traces must too.
  EXPECT_NE(legacy_trace, opt_trace);
}

TEST(TraceDeterminism, StreamCoversEngineNetAndStore) {
  Runtime rt(sim_config(4));
  run_cholesky(rt);
  const std::string json = export_trace(rt);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"store\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"sched\""), std::string::npos);
}

TEST(TimelineEquivalence, TraceDerivedMatchesLegacyRecorder) {
  Runtime rt(sim_config(4, /*record_timeline=*/true));
  run_cholesky(rt);

  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  const std::vector<TaskTimeline>& legacy = eng->timeline();
  const std::vector<TaskTimeline> derived =
      obs::timeline_from_trace(rt.trace_events());

  ASSERT_FALSE(legacy.empty());
  ASSERT_EQ(derived.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    SCOPED_TRACE("task index " + std::to_string(i));
    EXPECT_EQ(derived[i].task_id, legacy[i].task_id);
    EXPECT_EQ(derived[i].name, legacy[i].name);
    EXPECT_EQ(derived[i].machine, legacy[i].machine);
    EXPECT_DOUBLE_EQ(derived[i].created, legacy[i].created);
    EXPECT_DOUBLE_EQ(derived[i].dispatched, legacy[i].dispatched);
    EXPECT_DOUBLE_EQ(derived[i].body_start, legacy[i].body_start);
    EXPECT_DOUBLE_EQ(derived[i].completed, legacy[i].completed);
    EXPECT_DOUBLE_EQ(derived[i].charged_work, legacy[i].charged_work);
  }
}

TEST(TimelineEquivalence, HoldsUnderFaultRedispatch) {
  RuntimeConfig cfg = sim_config(4, /*record_timeline=*/true);
  cfg.fault.enabled = true;
  cfg.fault.seed = 0xbead;
  cfg.fault.crashes = {{2, 1e-3}};
  Runtime rt(std::move(cfg));
  run_cholesky(rt);

  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  const std::vector<TaskTimeline>& legacy = eng->timeline();
  const std::vector<TaskTimeline> derived =
      obs::timeline_from_trace(rt.trace_events());
  ASSERT_EQ(derived.size(), legacy.size());
  // Re-dispatched tasks keep the *last* attempt in both views.
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(derived[i].task_id, legacy[i].task_id);
    EXPECT_DOUBLE_EQ(derived[i].dispatched, legacy[i].dispatched);
    EXPECT_DOUBLE_EQ(derived[i].body_start, legacy[i].body_start);
    EXPECT_DOUBLE_EQ(derived[i].completed, legacy[i].completed);
  }
}

}  // namespace
}  // namespace jade
