// Determinism and equivalence contracts of the trace stream.
//
// 1. Two SimEngine runs of the same program on the same cluster export
//    byte-identical Chrome JSON — also with the fault layer armed and
//    crashing machines, since fault injection is seeded (PR 1).
// 2. The trace-derived task timeline (obs::timeline_from_trace) matches the
//    legacy in-engine recorder (SchedPolicy::record_timeline) field for
//    field, so the Gantt tooling can consume either source.
#include <gtest/gtest.h>

#include <sstream>

#include "jade/apps/cholesky.hpp"
#include "jade/core/runtime.hpp"
#include "jade/engine/sim_engine.hpp"
#include "jade/mach/presets.hpp"
#include "jade/obs/chrome_trace.hpp"
#include "jade/obs/timeline_view.hpp"

namespace jade {
namespace {

RuntimeConfig sim_config(int machines, bool record_timeline = false) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  cfg.obs.trace = true;
  cfg.sched.record_timeline = record_timeline;
  return cfg;
}

/// A workload that exercises engine, store, and network events: the paper's
/// sparse Cholesky example, which migrates tasks and moves/copies objects.
void run_cholesky(Runtime& rt) {
  const auto a = apps::paper_example_matrix();
  auto jm = apps::upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
  (void)apps::download_matrix(rt, jm);
}

std::string export_trace(Runtime& rt) {
  std::ostringstream os;
  rt.write_chrome_trace(os);
  return os.str();
}

TEST(TraceDeterminism, SameRunExportsByteIdenticalJson) {
  std::string first, second;
  {
    Runtime rt(sim_config(4));
    run_cholesky(rt);
    first = export_trace(rt);
  }
  {
    Runtime rt(sim_config(4));
    run_cholesky(rt);
    second = export_trace(rt);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminism, ByteIdenticalUnderSeededFaultInjection) {
  auto faulty_config = [] {
    RuntimeConfig cfg = sim_config(4);
    cfg.fault.enabled = true;
    cfg.fault.seed = 0xdecaf;
    // Explicit crash mid-factorization (the fault-free run takes ~3.3 ms of
    // virtual time), plus message loss: recovery and retransmission both
    // land in the trace, and both must replay identically.
    cfg.fault.crashes = {{1, 1e-3}};
    cfg.fault.drop_probability = 0.05;
    return cfg;
  };
  std::string first, second;
  {
    Runtime rt(faulty_config());
    run_cholesky(rt);
    first = export_trace(rt);
  }
  {
    Runtime rt(faulty_config());
    run_cholesky(rt);
    second = export_trace(rt);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The fault layer actually fired: its events are in the export.
  EXPECT_NE(first.find("\"cat\":\"ft\""), std::string::npos);
}

TEST(TraceDeterminism, StreamCoversEngineNetAndStore) {
  Runtime rt(sim_config(4));
  run_cholesky(rt);
  const std::string json = export_trace(rt);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"store\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"sched\""), std::string::npos);
}

TEST(TimelineEquivalence, TraceDerivedMatchesLegacyRecorder) {
  Runtime rt(sim_config(4, /*record_timeline=*/true));
  run_cholesky(rt);

  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  const std::vector<TaskTimeline>& legacy = eng->timeline();
  const std::vector<TaskTimeline> derived =
      obs::timeline_from_trace(rt.trace_events());

  ASSERT_FALSE(legacy.empty());
  ASSERT_EQ(derived.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    SCOPED_TRACE("task index " + std::to_string(i));
    EXPECT_EQ(derived[i].task_id, legacy[i].task_id);
    EXPECT_EQ(derived[i].name, legacy[i].name);
    EXPECT_EQ(derived[i].machine, legacy[i].machine);
    EXPECT_DOUBLE_EQ(derived[i].created, legacy[i].created);
    EXPECT_DOUBLE_EQ(derived[i].dispatched, legacy[i].dispatched);
    EXPECT_DOUBLE_EQ(derived[i].body_start, legacy[i].body_start);
    EXPECT_DOUBLE_EQ(derived[i].completed, legacy[i].completed);
    EXPECT_DOUBLE_EQ(derived[i].charged_work, legacy[i].charged_work);
  }
}

TEST(TimelineEquivalence, HoldsUnderFaultRedispatch) {
  RuntimeConfig cfg = sim_config(4, /*record_timeline=*/true);
  cfg.fault.enabled = true;
  cfg.fault.seed = 0xbead;
  cfg.fault.crashes = {{2, 1e-3}};
  Runtime rt(std::move(cfg));
  run_cholesky(rt);

  auto* eng = dynamic_cast<SimEngine*>(&rt.engine());
  ASSERT_NE(eng, nullptr);
  const std::vector<TaskTimeline>& legacy = eng->timeline();
  const std::vector<TaskTimeline> derived =
      obs::timeline_from_trace(rt.trace_events());
  ASSERT_EQ(derived.size(), legacy.size());
  // Re-dispatched tasks keep the *last* attempt in both views.
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(derived[i].task_id, legacy[i].task_id);
    EXPECT_DOUBLE_EQ(derived[i].dispatched, legacy[i].dispatched);
    EXPECT_DOUBLE_EQ(derived[i].body_start, legacy[i].body_start);
    EXPECT_DOUBLE_EQ(derived[i].completed, legacy[i].completed);
  }
}

}  // namespace
}  // namespace jade
