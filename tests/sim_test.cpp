// Tests for the discrete-event kernel: event ordering, virtual time,
// cooperative processes, determinism and deadlock detection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "jade/sim/event_queue.hpp"
#include "jade/sim/simulation.hpp"
#include "jade/support/error.hpp"

namespace jade {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeAndClear) {
  EventQueue q;
  q.schedule(2.5, [] {});
  q.schedule(1.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 1.5);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(Simulation, EventsAdvanceClock) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.schedule(1.0, [&] { seen.push_back(sim.now()); });
  sim.schedule(2.0, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule(5.0, [&] {
    EXPECT_THROW(sim.schedule(1.0, [] {}), InternalError);
  });
  sim.run();
}

TEST(Simulation, ProcessRunsAndAdvances) {
  Simulation sim;
  std::vector<SimTime> marks;
  sim.spawn("p", [&] {
    marks.push_back(sim.now());
    sim.advance(1.5);
    marks.push_back(sim.now());
    sim.advance(0.5);
    marks.push_back(sim.now());
  });
  sim.run();
  EXPECT_EQ(marks, (std::vector<SimTime>{0.0, 1.5, 2.0}));
}

TEST(Simulation, TwoProcessesInterleaveDeterministically) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("a", [&] {
    log.push_back("a0");
    sim.advance(2.0);
    log.push_back("a2");
  });
  sim.spawn("b", [&] {
    log.push_back("b0");
    sim.advance(1.0);
    log.push_back("b1");
    sim.advance(2.0);
    log.push_back("b3");
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "b1", "a2", "b3"}));
}

TEST(Simulation, ParkResumeHandshake) {
  Simulation sim;
  std::vector<std::string> log;
  Process* waiter = sim.spawn("waiter", [&] {
    log.push_back("wait");
    sim.park();
    log.push_back("woke at " + std::to_string(static_cast<int>(sim.now())));
  });
  sim.schedule(3.0, [&] { sim.resume(waiter); });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"wait", "woke at 3"}));
}

TEST(Simulation, ProcessResumesAnotherProcess) {
  Simulation sim;
  std::vector<std::string> log;
  Process* consumer = sim.spawn("consumer", [&] {
    sim.park();
    log.push_back("consumed");
  });
  sim.spawn("producer", [&] {
    sim.advance(1.0);
    log.push_back("produced");
    sim.resume(consumer);
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"produced", "consumed"}));
}

TEST(Simulation, SpawnFromWithinProcess) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("parent", [&] {
    log.push_back("parent");
    sim.spawn("child", [&] { log.push_back("child"); });
    sim.advance(1.0);
    log.push_back("parent-later");
  });
  sim.run();
  EXPECT_EQ(log,
            (std::vector<std::string>{"parent", "child", "parent-later"}));
}

TEST(Simulation, SpawnAtFutureTime) {
  Simulation sim;
  SimTime started = -1;
  sim.spawn_at(4.0, "late", [&] { started = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(started, 4.0);
}

TEST(Simulation, StalledProcessesDetected) {
  Simulation sim;
  sim.spawn("stuck", [&] { sim.park(); });  // nobody will resume it
  EXPECT_THROW(sim.run(), InternalError);
}

TEST(Simulation, ExceptionInProcessPropagates) {
  Simulation sim;
  sim.spawn("bomb", [&] { throw std::runtime_error("bang"); });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulation, ExceptionTeardownUnwindsOtherProcesses) {
  Simulation sim;
  bool cleaned = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  sim.spawn("victim", [&] {
    Sentinel s{&cleaned};
    sim.park();  // never resumed; must unwind at destruction
  });
  sim.spawn("bomb", [&] {
    sim.advance(1.0);
    throw std::runtime_error("bang");
  });
  EXPECT_THROW(sim.run(), std::runtime_error);
  // Destructor of sim unwinds the parked process cooperatively.
}

TEST(Simulation, ManyProcessesDeterministicOrder) {
  auto run_once = [] {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.spawn("p" + std::to_string(i), [&sim, &order, i] {
        sim.advance((i % 7) * 0.25);
        order.push_back(i);
      });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, EventsExecutedCount) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, AdvanceZeroIsImmediateButYields) {
  Simulation sim;
  std::vector<std::string> log;
  sim.spawn("a", [&] {
    log.push_back("a-pre");
    sim.advance(0.0);
    log.push_back("a-post");
  });
  sim.spawn("b", [&] { log.push_back("b"); });
  sim.run();
  // advance(0) reschedules at the same time, behind b's start event.
  EXPECT_EQ(log, (std::vector<std::string>{"a-pre", "b", "a-post"}));
}

}  // namespace
}  // namespace jade
