// Tests of the LWS liquid-water application (paper Section 7.3).
#include <gtest/gtest.h>

#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"

namespace jade::apps {
namespace {

WaterConfig small_config() {
  WaterConfig c;
  c.molecules = 120;
  c.groups = 6;
  c.timesteps = 2;
  return c;
}

RuntimeConfig config_for(EngineKind kind, int machines = 4) {
  RuntimeConfig cfg;
  cfg.engine = kind;
  cfg.threads = machines;
  if (kind == EngineKind::kSim) cfg.cluster = presets::ideal(machines);
  return cfg;
}

TEST(WaterSerial, DeterministicInSeed) {
  const auto c = small_config();
  auto s1 = make_water(c);
  auto s2 = make_water(c);
  water_run_serial(c, s1);
  water_run_serial(c, s2);
  EXPECT_EQ(s1.pos, s2.pos);
  EXPECT_EQ(s1.vel, s2.vel);
}

TEST(WaterSerial, MoleculesActuallyMove) {
  const auto c = small_config();
  auto s = make_water(c);
  const auto initial = s.pos;
  water_run_serial(c, s);
  int moved = 0;
  for (std::size_t i = 0; i < s.pos.size(); ++i)
    if (s.pos[i] != initial[i]) ++moved;
  EXPECT_GT(moved, static_cast<int>(s.pos.size()) / 2);
}

TEST(WaterSerial, StepWorkScalesQuadratically) {
  WaterConfig a = small_config();
  WaterConfig b = small_config();
  b.molecules = 2 * a.molecules;
  EXPECT_GT(water_step_work(b), 3.5 * water_step_work(a));
}

class JadeWaterTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(JadeWaterTest, MatchesSerialBitExactly) {
  const auto c = small_config();
  auto expect = make_water(c);
  water_run_serial(c, expect);

  Runtime rt(config_for(GetParam()));
  auto w = upload_water(rt, c, make_water(c));
  rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
  const auto got = download_water(rt, w);
  EXPECT_EQ(got.pos, expect.pos);
  EXPECT_EQ(got.vel, expect.vel);
  EXPECT_DOUBLE_EQ(water_checksum(got), water_checksum(expect));
}

TEST_P(JadeWaterTest, GroupCountDoesNotChangeResult) {
  auto run_groups = [&](int groups) {
    WaterConfig c = small_config();
    c.groups = groups;
    Runtime rt(config_for(GetParam()));
    auto w = upload_water(rt, c, make_water(c));
    rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
    return download_water(rt, w).pos;
  };
  const auto base = run_groups(1);
  EXPECT_EQ(run_groups(4), base);
  EXPECT_EQ(run_groups(12), base);
}

TEST_P(JadeWaterTest, TaskCountMatchesStructure) {
  const auto c = small_config();
  Runtime rt(config_for(GetParam()));
  auto w = upload_water(rt, c, make_water(c));
  rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
  // Per timestep: one task per group plus the serial integration task.
  EXPECT_EQ(rt.stats().tasks_created,
            static_cast<std::uint64_t>(c.timesteps) * (c.groups + 1));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, JadeWaterTest,
                         ::testing::Values(EngineKind::kSerial,
                                           EngineKind::kThread,
                                           EngineKind::kSim),
                         [](const auto& info) {
                           switch (info.param) {
                             case EngineKind::kSerial: return "Serial";
                             case EngineKind::kThread: return "Thread";
                             case EngineKind::kSim: return "Sim";
                           }
                           return "Unknown";
                         });

TEST(JadeWaterSim, MoreMachinesFinishSooner) {
  auto duration = [](int machines, NetKind net) {
    WaterConfig c;
    c.molecules = 200;
    c.groups = 8;
    c.timesteps = 1;
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = net == NetKind::kSharedMemory
                      ? presets::dash(machines)
                      : presets::ipsc860(machines);
    Runtime rt(std::move(cfg));
    auto w = upload_water(rt, c, make_water(c));
    rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
    return rt.sim_duration();
  };
  EXPECT_LT(duration(4, NetKind::kSharedMemory),
            0.6 * duration(1, NetKind::kSharedMemory));
  EXPECT_LT(duration(4, NetKind::kHypercube),
            0.8 * duration(1, NetKind::kHypercube));
}

TEST(JadeWaterSim, SerialPhaseBoundsSpeedup) {
  // Amdahl sanity: with one group the force phase is serial too, so more
  // machines cannot help much.
  auto duration = [](int machines) {
    WaterConfig c;
    c.molecules = 150;
    c.groups = 1;
    c.timesteps = 1;
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::dash(machines);
    Runtime rt(std::move(cfg));
    auto w = upload_water(rt, c, make_water(c));
    rt.run([&](TaskContext& ctx) { water_run_jade(ctx, w); });
    return rt.sim_duration();
  };
  EXPECT_GT(duration(8), 0.9 * duration(1));
}

}  // namespace
}  // namespace jade::apps
