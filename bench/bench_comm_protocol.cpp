// Communication-protocol rework, isolated: the same three message-passing
// workloads with every CommConfig optimization off ("before" — the original
// per-object request/copy/invalidate protocol) and on ("after" — request
// combining, version-based replica reuse, coalesced invalidation,
// conversion caching, deferred prefetch).
//
// The scenarios target the protocol's three classic hot spots:
//
//   read_fanout       one publisher on the home machine, n-1 readers
//                     re-reading a large object every round.  The publisher
//                     declares rd_wr conservatively but only rewrites the
//                     data on the first round (Jade specifications may
//                     over-approximate, Section 4), so the dropped replicas
//                     stay version-current: revalidation replaces 7 payload
//                     copies per round with control round-trips, and each
//                     reader's {x, meta} pair travels as one combined
//                     request.
//   write_invalidate  ownership ping-pong: a writer alternating between two
//                     machines while every machine re-reads.  The incoming
//                     writer already holds yesterday's replica, so the move
//                     upgrades in place (no payload), and the 6-7 replica
//                     invalidations coalesce into one multicast on the
//                     shared Ethernet.
//   cross_endian      a little-endian producer feeding three big-endian
//                     consumers on the heterogeneous workstation preset;
//                     the sender converts the representation once per data
//                     version instead of once per transfer.
//
// Every cell runs in simulated virtual time (deterministic), is verified
// against the serial reference engine before it is reported (a wrong answer
// exits non-zero), and the before/after rows are written as a JSON artifact
// (--json-out, default BENCH_comm_protocol.json).  The read-fanout payload
// reduction and the completion-time wins are asserted, not just printed:
// they are virtual-time results, so a regression is a real protocol change,
// not measurement noise.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

namespace {

using namespace jade;

struct Row {
  std::string scenario;
  std::string config;  // "before" | "after"
  double finish_time = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages = 0;
  std::uint64_t requests_combined = 0;
  std::uint64_t replicas_reused = 0;
  std::uint64_t invalidations_coalesced = 0;
  std::uint64_t conversions_cached = 0;
  std::uint64_t bytes_avoided = 0;
};

/// A workload fills `check` with its observable results; the same body runs
/// on the serial reference and both protocol configurations, and the three
/// vectors must match exactly.
using Workload = std::vector<double> (*)(Runtime&);

Row measure(const std::string& scenario, bool optimized,
            const ClusterConfig& cluster, Workload workload,
            const std::vector<double>& expect) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = cluster;
  if (!optimized)
    cfg.sched.comm = CommConfig{false, false, false, false, false};
  Runtime rt(std::move(cfg));
  const std::vector<double> got = workload(rt);
  if (got != expect) {
    std::cerr << scenario << " (" << (optimized ? "after" : "before")
              << ") verification failed against the serial reference\n";
    std::exit(1);
  }
  const RuntimeStats& s = rt.stats();
  Row r;
  r.scenario = scenario;
  r.config = optimized ? "after" : "before";
  r.finish_time = s.finish_time;
  r.payload_bytes = s.payload_bytes;
  r.bytes_sent = s.bytes_sent;
  r.messages = s.messages;
  r.requests_combined = s.requests_combined;
  r.replicas_reused = s.replicas_reused;
  r.invalidations_coalesced = s.invalidations_coalesced;
  r.conversions_cached = s.conversions_cached;
  r.bytes_avoided = s.bytes_avoided;
  return r;
}

std::vector<double> serial_reference(Workload workload) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSerial;
  Runtime rt(std::move(cfg));
  return workload(rt);
}

// --- scenario 1: read fan-out ----------------------------------------------

constexpr int kFanMachines = 8;
constexpr int kFanRounds = 8;
constexpr std::size_t kFanX = 4096;    // doubles: 32 KB payload
constexpr std::size_t kFanMeta = 64;   // doubles: the small rider object

std::vector<double> read_fanout(Runtime& rt) {
  auto x = rt.alloc<double>(kFanX, "x", 0);
  auto meta = rt.alloc<double>(kFanMeta, "meta", 0);
  std::vector<SharedRef<double>> acc;
  for (int m = 1; m < kFanMachines; ++m)
    acc.push_back(rt.alloc<double>(1, "acc" + std::to_string(m),
                                   m % rt.machine_count()));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kFanRounds; ++r) {
      // The publisher conservatively declares rd_wr(x) every round but only
      // rewrites it once; meta changes every round.
      ctx.withonly_on(0,
                      [&](AccessDecl& d) {
                        d.rd_wr(x);
                        d.rd_wr(meta);
                      },
                      [x, meta, r](TaskContext& t) {
                        t.charge(2000);
                        auto ms = t.read_write(meta);
                        for (std::size_t i = 0; i < ms.size(); ++i)
                          ms[i] = r * 100.0 + static_cast<double>(i);
                        if (r == 0) {
                          auto xs = t.read_write(x);
                          for (std::size_t i = 0; i < xs.size(); ++i)
                            xs[i] = static_cast<double>(i % 257);
                        }
                      },
                      "pub" + std::to_string(r));
      for (int m = 1; m < kFanMachines; ++m) {
        auto a = acc[static_cast<std::size_t>(m - 1)];
        ctx.withonly_on(m % rt.machine_count(),
                        [&](AccessDecl& d) {
                          d.rd(x);
                          d.rd(meta);
                          d.rd_wr(a);
                        },
                        [x, meta, a, m](TaskContext& t) {
                          t.charge(500);
                          auto xs = t.read(x);
                          auto ms = t.read(meta);
                          double s = 0;
                          for (std::size_t i = 0; i < xs.size();
                               i += static_cast<std::size_t>(m))
                            s += xs[i];
                          for (double v : ms) s += v;
                          t.read_write(a)[0] += s;
                        },
                        "rd" + std::to_string(r) + "_" + std::to_string(m));
      }
    }
  });
  std::vector<double> check;
  for (auto& a : acc) check.push_back(rt.get(a)[0]);
  for (double v : rt.get(meta)) check.push_back(v);
  check.push_back(rt.get(x)[kFanX - 1]);
  return check;
}

// --- scenario 2: write-invalidate ping-pong --------------------------------

constexpr int kPingMachines = 8;
constexpr int kPingRounds = 10;
constexpr std::size_t kPingX = 2048;  // doubles: 16 KB payload

std::vector<double> write_invalidate(Runtime& rt) {
  auto x = rt.alloc<double>(kPingX, "x", 0);
  std::vector<SharedRef<double>> acc;
  for (int m = 0; m < kPingMachines; ++m)
    acc.push_back(rt.alloc<double>(1, "acc" + std::to_string(m),
                                   m % rt.machine_count()));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kPingRounds; ++r) {
      const int wm = r % 2;  // the writer ping-pongs between machines 0 and 1
      ctx.withonly_on(wm, [&](AccessDecl& d) { d.rd_wr(x); },
                      [x, r](TaskContext& t) {
                        t.charge(1000);
                        auto xs = t.read_write(x);
                        const std::size_t base =
                            (static_cast<std::size_t>(r) * 37) % xs.size();
                        for (std::size_t i = 0; i < 64; ++i)
                          xs[(base + i) % xs.size()] += r + 1.0;
                      },
                      "wr" + std::to_string(r));
      for (int m = 0; m < kPingMachines; ++m) {
        auto a = acc[static_cast<std::size_t>(m)];
        ctx.withonly_on(m % rt.machine_count(),
                        [&](AccessDecl& d) {
                          d.rd(x);
                          d.rd_wr(a);
                        },
                        [x, a, m](TaskContext& t) {
                          t.charge(300);
                          auto xs = t.read(x);
                          double s = 0;
                          for (std::size_t i = 0; i < xs.size(); i += 31)
                            s += xs[i] * (m + 1);
                          t.read_write(a)[0] += s;
                        },
                        "rd" + std::to_string(r) + "_" + std::to_string(m));
      }
    }
  });
  std::vector<double> check;
  for (auto& a : acc) check.push_back(rt.get(a)[0]);
  check.push_back(rt.get(x)[0]);
  return check;
}

// --- scenario 3: cross-endian pipeline -------------------------------------

constexpr int kEndianMachines = 6;
constexpr int kEndianRounds = 8;
constexpr std::size_t kEndianX = 2048;  // doubles: 2048 scalars to convert

std::vector<double> cross_endian(Runtime& rt) {
  // hetero_workstations alternates little-endian MIPS (even machines) and
  // big-endian SPARC (odd): the producer on 0 feeds consumers on 1, 3, 5,
  // so every copy crosses the byte-order boundary.
  auto x = rt.alloc<double>(kEndianX, "x", 0);
  std::vector<SharedRef<double>> acc;
  const int readers[] = {1, 3, 5};
  for (int m : readers)
    acc.push_back(rt.alloc<double>(1, "acc" + std::to_string(m),
                                   m % rt.machine_count()));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kEndianRounds; ++r) {
      ctx.withonly_on(0, [&](AccessDecl& d) { d.rd_wr(x); },
                      [x, r](TaskContext& t) {
                        t.charge(1500);
                        auto xs = t.read_write(x);
                        for (std::size_t i = 0; i < xs.size(); i += 8)
                          xs[i] = r * 1000.0 + static_cast<double>(i);
                      },
                      "produce" + std::to_string(r));
      for (std::size_t k = 0; k < 3; ++k) {
        const int m = readers[k];
        auto a = acc[k];
        ctx.withonly_on(m % rt.machine_count(),
                        [&](AccessDecl& d) {
                          d.rd(x);
                          d.rd_wr(a);
                        },
                        [x, a, m](TaskContext& t) {
                          t.charge(400);
                          auto xs = t.read(x);
                          double s = 0;
                          for (std::size_t i = 0; i < xs.size(); i += 16)
                            s += xs[i] + m;
                          t.read_write(a)[0] += s;
                        },
                        "consume" + std::to_string(r) + "_" +
                            std::to_string(m));
      }
    }
  });
  std::vector<double> check;
  for (auto& a : acc) check.push_back(rt.get(a)[0]);
  check.push_back(rt.get(x)[8]);
  return check;
}

// --- reporting -------------------------------------------------------------

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_comm_protocol\",\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"config\": \"%s\", "
        "\"finish_time\": %.9f, \"payload_bytes\": %llu, "
        "\"bytes_sent\": %llu, \"messages\": %llu, "
        "\"requests_combined\": %llu, \"replicas_reused\": %llu, "
        "\"invalidations_coalesced\": %llu, \"conversions_cached\": %llu, "
        "\"bytes_avoided\": %llu}%s\n",
        r.scenario.c_str(), r.config.c_str(), r.finish_time,
        static_cast<unsigned long long>(r.payload_bytes),
        static_cast<unsigned long long>(r.bytes_sent),
        static_cast<unsigned long long>(r.messages),
        static_cast<unsigned long long>(r.requests_combined),
        static_cast<unsigned long long>(r.replicas_reused),
        static_cast<unsigned long long>(r.invalidations_coalesced),
        static_cast<unsigned long long>(r.conversions_cached),
        static_cast<unsigned long long>(r.bytes_avoided),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_comm_protocol.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strncmp(argv[i], "--json-out=", 11) == 0)
      json_path = argv[i] + 11;
  }

  struct Scenario {
    const char* name;
    ClusterConfig cluster;
    Workload workload;
  };
  const Scenario scenarios[] = {
      {"read_fanout", presets::mica(kFanMachines), read_fanout},
      {"write_invalidate", presets::mica(kPingMachines), write_invalidate},
      {"cross_endian", presets::hetero_workstations(kEndianMachines),
       cross_endian},
  };

  std::cout << "=== communication protocol: legacy (before) vs optimized "
               "(after), virtual time ===\n";
  std::vector<Row> rows;
  TextTable table({"scenario", "config", "virt sec", "payload KB",
                   "sent KB", "msgs", "combined", "reused", "coalesced",
                   "conv cached"});
  for (const Scenario& sc : scenarios) {
    const std::vector<double> expect = serial_reference(sc.workload);
    for (bool optimized : {false, true}) {
      Row r = measure(sc.name, optimized, sc.cluster, sc.workload, expect);
      table.add_row(
          {r.scenario, r.config, format_double(r.finish_time, 6),
           format_double(r.payload_bytes / 1024.0, 1),
           format_double(r.bytes_sent / 1024.0, 1),
           std::to_string(r.messages), std::to_string(r.requests_combined),
           std::to_string(r.replicas_reused),
           std::to_string(r.invalidations_coalesced),
           std::to_string(r.conversions_cached)});
      rows.push_back(std::move(r));
    }
  }
  table.print(std::cout);

  // The wins are virtual-time facts, not measurement noise: assert them.
  bool ok = true;
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const Row& before = rows[i];
    const Row& after = rows[i + 1];
    const double payload_ratio =
        after.payload_bytes == 0
            ? 1e9
            : static_cast<double>(before.payload_bytes) /
                  static_cast<double>(after.payload_bytes);
    const double speedup = before.finish_time / after.finish_time;
    std::cout << before.scenario << ": " << format_double(payload_ratio, 2)
              << "x fewer payload bytes, " << format_double(speedup, 3)
              << "x faster completion\n";
    if (before.scenario == "read_fanout" && payload_ratio < 1.5) {
      std::cerr << "FAIL: read_fanout payload reduction " << payload_ratio
                << "x < 1.5x\n";
      ok = false;
    }
    if (after.finish_time >= before.finish_time) {
      std::cerr << "FAIL: " << before.scenario
                << " optimized protocol is not faster\n";
      ok = false;
    }
  }
  if (!ok) return 1;

  write_json(json_path, rows);
  std::cout << "(all cells verified against the serial reference; rows "
               "recorded in "
            << json_path << ")\n";
  return 0;
}
