// Sparse Cholesky scaling and the supernode ablation (Sections 3 and 7).
//
// The paper notes that per-column tasks are "actually a simplification" and
// that the real code aggregates columns into supernodes to increase the
// grain size.  This harness sweeps machine counts for per-column tasks and
// several block (supernode) sizes: with fine grain the per-task runtime
// overhead dominates; blocking recovers the speedup — the grain-size story
// of Section 8.
#include <iostream>

#include "jade/apps/cholesky.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

#include "bench_trace.hpp"

namespace {

double run_factor(const jade::apps::SparseMatrix& a,
                  const jade::apps::SparseMatrix& expect, int machines,
                  int block,
                  const jade_bench::TraceRequest& trace = {}) {
  using namespace jade;
  using namespace jade::apps;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  jade_bench::apply_trace(trace, cfg);
  Runtime rt(std::move(cfg));
  if (block <= 1) {
    auto jm = upload_matrix(rt, a);
    rt.run([&](TaskContext& ctx) { factor_jade(ctx, jm); });
    if (download_matrix(rt, jm).cols != expect.cols) std::exit(1);
  } else {
    auto jm = upload_blocked(rt, a, block);
    rt.run([&](TaskContext& ctx) { factor_jade_blocked(ctx, jm); });
    if (download_blocked(rt, jm).cols != expect.cols) std::exit(1);
  }
  jade_bench::write_trace(trace, rt);
  return rt.sim_duration();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jade::apps;
  const jade_bench::TraceRequest trace = jade_bench::trace_request(argc, argv);
  const int n = 256;
  const auto a = make_spd(n, 5.0 / n, 7);
  auto expect = a;
  factor_serial(expect);
  std::cout << "=== Sparse Cholesky on the simulated iPSC/860: n=" << n
            << ", nnz=" << a.nnz() << ", flops=" << factor_flops(a)
            << " ===\n";
  std::cout << "virtual seconds per (machines x supernode block):\n";
  jade::TextTable table(
      {"machines", "per-column", "block=4", "block=16", "block=32"});
  for (int p : {1, 2, 4, 8, 16}) {
    std::vector<double> row{static_cast<double>(p)};
    for (int block : {1, 4, 16, 32}) {
      // Traced representative cell: 8 machines, block=16 (the sweet spot).
      const bool traced_run = p == 8 && block == 16;
      row.push_back(run_factor(a, expect, p, block,
                               traced_run ? trace : jade_bench::TraceRequest{}));
    }
    table.add_row(row, 3);
  }
  table.print(std::cout);
  std::cout << "(expected shape: per-column tasks drown in per-task "
               "overhead — the Section 8 grain-size limit; supernode blocks "
               "trade concurrency for grain, with a sweet spot in between; "
               "every cell is verified bit-identical to the serial "
               "factorization)\n";
  return 0;
}
