// Section 5 ablations: each of the implementation's optimization
// algorithms, toggled individually on a communication-heavy workload (LWS
// on the Mica Ethernet cluster, where object motion is expensive):
//
//   * Enhancing Locality        — sched.locality on/off
//   * Hiding Latency w/ Concurrency — task contexts per machine 1/2/4
//   * Matching Exploited w/ Available Concurrency — throttle off/on
//
// Expected: locality off inflates traffic and time; a single context
// serializes fetch with execution; throttling bounds queued tasks at a
// small time cost.
#include <iostream>

#include "jade/apps/cholesky.hpp"
#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

namespace {

struct Variant {
  const char* name;
  jade::SchedPolicy sched;
};

struct Outcome {
  double seconds;
  std::uint64_t bytes;
  std::uint64_t moves_copies;
  std::uint64_t suspensions;
};

Outcome run_variant(const jade::apps::WaterConfig& wc,
                    const jade::apps::WaterState& initial,
                    const jade::SchedPolicy& sched, int machines) {
  using namespace jade;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::mica(machines);
  cfg.sched = sched;
  Runtime rt(std::move(cfg));
  auto w = jade::apps::upload_water(rt, wc, initial);
  rt.run([&](TaskContext& ctx) { jade::apps::water_run_jade(ctx, w); });
  const auto& s = rt.stats();
  return {rt.sim_duration(), s.bytes_sent,
          s.object_moves + s.object_copies, s.throttle_suspensions};
}

/// Second workload: blocked sparse Cholesky on the iPSC/860 — object motion
/// (whole column blocks) dominates, so locality and latency hiding matter
/// more than on the read-mostly LWS.
Outcome run_cholesky_variant(const jade::apps::SparseMatrix& a,
                             const jade::SchedPolicy& sched, int machines) {
  using namespace jade;
  using namespace jade::apps;
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ipsc860(machines);
  cfg.sched = sched;
  Runtime rt(std::move(cfg));
  auto jm = upload_blocked(rt, a, /*block=*/16);
  rt.run([&](TaskContext& ctx) { factor_jade_blocked(ctx, jm); });
  const auto& s = rt.stats();
  return {rt.sim_duration(), s.bytes_sent,
          s.object_moves + s.object_copies, s.throttle_suspensions};
}

}  // namespace

int main() {
  using namespace jade;
  apps::WaterConfig wc;
  wc.molecules = 800;
  wc.groups = 32;
  wc.timesteps = 2;
  const auto initial = apps::make_water(wc);
  const int machines = 8;

  SchedPolicy base;  // locality on, 2 contexts, throttle off

  std::vector<Variant> variants;
  variants.push_back({"baseline (locality, 2 ctx)", base});
  {
    SchedPolicy v = base;
    v.locality = false;
    variants.push_back({"locality OFF", v});
  }
  {
    SchedPolicy v = base;
    v.contexts_per_machine = 1;
    variants.push_back({"1 context (no latency hiding)", v});
  }
  {
    SchedPolicy v = base;
    v.contexts_per_machine = 4;
    variants.push_back({"4 contexts", v});
  }
  {
    SchedPolicy v = base;
    v.throttle.enabled = true;
    v.throttle.high_water = 16;
    v.throttle.low_water = 8;
    variants.push_back({"throttle on (16/8)", v});
  }

  std::cout << "=== Section 5 optimization ablations: LWS ("
            << wc.molecules << " molecules) on " << machines
            << "-node Mica ===\n";
  TextTable table({"variant", "virtual s", "MB moved", "moves+copies",
                   "throttle stops"});
  for (const auto& v : variants) {
    const Outcome o = run_variant(wc, initial, v.sched, machines);
    table.add_row({v.name, format_double(o.seconds, 3),
                   format_double(static_cast<double>(o.bytes) / 1e6, 2),
                   std::to_string(o.moves_copies),
                   std::to_string(o.suspensions)});
  }
  table.print(std::cout);

  const auto a = apps::make_spd(256, 5.0 / 256, 7);
  std::cout << "\n=== same ablations: blocked sparse Cholesky (n=256, "
               "block=16) on 8-node iPSC/860 ===\n";
  TextTable table2({"variant", "virtual s", "MB moved", "moves+copies",
                    "throttle stops"});
  for (const auto& v : variants) {
    const Outcome o = run_cholesky_variant(a, v.sched, machines);
    table2.add_row({v.name, format_double(o.seconds, 3),
                    format_double(static_cast<double>(o.bytes) / 1e6, 2),
                    std::to_string(o.moves_copies),
                    std::to_string(o.suspensions)});
  }
  table2.print(std::cout);
  std::cout << "(every variant produces the identical serial result; only "
               "time and traffic change)\n";
  return 0;
}
