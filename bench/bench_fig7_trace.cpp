// Figure 7 — "Executing a Jade Program": the paper's step-by-step
// walkthrough of the sparse Cholesky factorization on two message-passing
// machines, showing task migration off the busy main machine, object moves
// on write access, object copies (replication) on read access, suspension
// on dynamic conflicts, and latency hiding.
//
// This harness runs exactly that scenario — the example matrix on a
// simulated two-machine message-passing cluster — with structured tracing
// (src/jade/obs) enabled.  The per-task schedule and the machine-occupancy
// gantt are derived from the trace stream, and `--trace-out file.json` (or
// JADE_TRACE=file.json) additionally exports the full trace as Chrome JSON.
#include <iostream>
#include <string>

#include "jade/apps/cholesky.hpp"
#include "jade/mach/presets.hpp"
#include "jade/obs/chrome_trace.hpp"
#include "jade/obs/timeline_view.hpp"
#include "jade/support/log.hpp"

#include "bench_trace.hpp"

int main(int argc, char** argv) {
  using namespace jade;
  using namespace jade::apps;
  const jade_bench::TraceRequest trace = jade_bench::trace_request(argc, argv);

  std::cout << "=== Figure 7: execution trace, sparse Cholesky on 2 "
               "message-passing machines ===\n";

  Log::set_level(LogLevel::kTrace);
  Log::set_sink([](LogLevel, const std::string& msg) {
    std::cout << "  " << msg << '\n';
  });

  const auto a = paper_example_matrix();
  auto expect = a;
  factor_serial(expect);

  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::hetero_workstations(2);
  cfg.obs.trace = true;  // the schedule below is derived from the trace
  Runtime rt(std::move(cfg));
  auto jm = upload_matrix(rt, a);
  rt.run([&](TaskContext& ctx) { factor_jade(ctx, jm); });

  Log::set_level(LogLevel::kOff);
  Log::set_sink(nullptr);

  if (download_matrix(rt, jm).cols != expect.cols) {
    std::cout << "RESULT MISMATCH\n";
    return 1;
  }

  const std::vector<obs::TraceEvent> events = rt.trace_events();
  const std::vector<TaskTimeline> timeline = obs::timeline_from_trace(events);
  std::cout << "\n--- machine occupancy (cf. Figure 7's two machines) ---\n";
  std::cout << render_gantt(timeline, 2, rt.sim_duration(), 64);
  std::cout << "\n--- per-task schedule (derived from the trace stream) ---\n";
  std::cout << "task                 machine  created  dispatched  "
               "body-start  completed\n";
  for (const auto& t : timeline) {
    if (t.task_id == 0) continue;  // root
    std::printf("%-20s %-8d %.5f  %.5f     %.5f     %.5f\n", t.name.c_str(),
                t.machine, t.created, t.dispatched, t.body_start,
                t.completed);
  }
  std::cout << "\n--- trace event summary ---\n";
  std::cout << obs::trace_text_summary(events);
  jade_bench::write_trace(trace, rt);

  const auto& s = rt.stats();
  std::cout << "\n--- event summary (cf. Figure 7 panels) ---\n";
  std::cout << "tasks created                 : " << s.tasks_created
            << "  (5 internal + 5 external updates)\n";
  std::cout << "tasks migrated off creator     : " << s.tasks_migrated
            << "  (7b/7c: idle machine pulls work)\n";
  std::cout << "object moves (write access)    : " << s.object_moves
            << "  (7c: old version deallocated)\n";
  std::cout << "object copies (read access)    : " << s.object_copies
            << "  (7c: concurrent read replication)\n";
  std::cout << "replica invalidations          : " << s.invalidations
            << "\n";
  std::cout << "messages / bytes               : " << s.messages << " / "
            << s.bytes_sent << "\n";
  std::cout << "format conversions (scalars)   : " << s.scalars_converted
            << "  (MIPS<->SPARC byte order)\n";
  std::cout << "virtual completion time        : " << rt.sim_duration()
            << " s\n";
  std::cout << "factorization matches the serial execution bit for bit\n";
  return 0;
}
