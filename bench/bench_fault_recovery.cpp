// Fault injection & recovery overhead — what fault tolerance costs.
//
// Runs LWS and sparse Cholesky on the Mica preset (the paper's network of
// workstations, the platform where machines actually crash) three ways:
//
//   ft-off    — the fault layer compiled out of the run entirely;
//   quiet     — fault layer armed (heartbeats, lossy-transport decorator,
//               write snapshots) but no crash scheduled and no message loss:
//               the standing price of being ready to recover;
//   crashes   — two machines fail mid-run plus 2% message loss: the price
//               of actually recovering (detection, task re-execution,
//               object re-homing/restore).
//
// Every run's result is verified against the serial execution — recovery
// that corrupted the answer would abort the bench.  Rows land in a JSON
// artifact (--json-out, default BENCH_fault_recovery.json) in the uniform
// bench_format shape.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "jade/apps/cholesky.hpp"
#include "jade/apps/water.hpp"
#include "jade/ft/ft_stats.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

#include "bench_format.hpp"
#include "bench_trace.hpp"

namespace {

constexpr int kMachines = 8;

jade::RuntimeConfig base_config(jade::FaultConfig fault) {
  jade::RuntimeConfig cfg;
  cfg.engine = jade::EngineKind::kSim;
  cfg.cluster = jade::presets::mica(kMachines);
  cfg.fault = std::move(fault);
  return cfg;
}

jade::FaultConfig quiet_fault() {
  jade::FaultConfig f;
  f.enabled = true;
  return f;
}

/// Two seeded crashes in the busy middle of a run that takes `duration`
/// fault-free, plus light message loss.
jade::FaultConfig crashy_fault(jade::SimTime duration) {
  jade::FaultConfig f;
  f.enabled = true;
  f.seed = 0xc4a05;
  f.auto_crashes = 2;
  f.crash_window_begin = 0.2 * duration;
  f.crash_window_end = 0.7 * duration;
  f.drop_probability = 0.02;
  return f;
}

struct Run {
  double duration = 0;
  jade::RuntimeStats stats;
};

Run run_lws(const jade::apps::WaterConfig& wc,
            const jade::apps::WaterState& initial,
            const jade::apps::WaterState& expect, jade::FaultConfig fault,
            const jade_bench::TraceRequest& trace = {}) {
  jade::RuntimeConfig cfg = base_config(std::move(fault));
  jade_bench::apply_trace(trace, cfg);
  jade::Runtime rt(std::move(cfg));
  auto w = jade::apps::upload_water(rt, wc, initial);
  rt.run([&](jade::TaskContext& ctx) { jade::apps::water_run_jade(ctx, w); });
  if (jade::apps::download_water(rt, w).pos != expect.pos) {
    std::fprintf(stderr, "LWS result mismatch under fault injection\n");
    std::exit(1);
  }
  jade_bench::write_trace(trace, rt);
  return {rt.sim_duration(), rt.stats()};
}

Run run_cholesky(const jade::apps::SparseMatrix& a,
                 const jade::apps::SparseMatrix& expect,
                 jade::FaultConfig fault) {
  jade::Runtime rt(base_config(std::move(fault)));
  auto jm = jade::apps::upload_matrix(rt, a);
  rt.run([&](jade::TaskContext& ctx) { jade::apps::factor_jade(ctx, jm); });
  if (jade::apps::download_matrix(rt, jm).cols != expect.cols) {
    std::fprintf(stderr, "Cholesky result mismatch under fault injection\n");
    std::exit(1);
  }
  return {rt.sim_duration(), rt.stats()};
}

double pct_over(double base, double x) { return 100.0 * (x - base) / base; }

/// One uniform JSON row per (app, fault configuration) cell.
void add_row(jade::bench::JsonReport& report, const std::string& app,
             const std::string& config, double base_seconds, const Run& r) {
  report.add_row()
      .str("app", app)
      .str("config", config)
      .count("machines", kMachines)
      .num("seconds", r.duration, 6)
      .num("overhead_pct", pct_over(base_seconds, r.duration), 2)
      .count("machine_crashes", r.stats.machine_crashes)
      .count("tasks_killed", r.stats.tasks_killed)
      .count("tasks_requeued", r.stats.tasks_requeued)
      .count("messages_dropped", r.stats.messages_dropped)
      .count("objects_rehomed", r.stats.objects_rehomed)
      .count("objects_restored", r.stats.objects_restored)
      .boolean("verified", true);
}

}  // namespace

int main(int argc, char** argv) {
  const jade_bench::TraceRequest trace = jade_bench::trace_request(argc, argv);
  std::cout << "=== Fault tolerance overhead: virtual seconds on mica/"
            << kMachines << ", result verified against serial ===\n";

  // LWS, trimmed from the paper's 2197 molecules to keep the bench quick
  // but with the same task structure (many groups per machine).
  jade::apps::WaterConfig wc;
  wc.molecules = 1000;
  wc.groups = 26;
  wc.timesteps = 2;
  const auto initial = jade::apps::make_water(wc);
  auto lws_expect = initial;
  jade::apps::water_run_serial(wc, lws_expect);

  const auto a = jade::apps::make_spd(96, 0.1, 13);
  auto chol_expect = a;
  jade::apps::factor_serial(chol_expect);

  const Run lws_off = run_lws(wc, initial, lws_expect, {});
  const Run lws_quiet = run_lws(wc, initial, lws_expect, quiet_fault());
  // The crash run is the traced representative: the exported JSON shows the
  // ft.crash/ft.kill/ft.requeue instants alongside the re-executed tasks.
  const Run lws_crash = run_lws(wc, initial, lws_expect,
                                crashy_fault(lws_quiet.duration), trace);

  const Run chol_off = run_cholesky(a, chol_expect, {});
  const Run chol_quiet = run_cholesky(a, chol_expect, quiet_fault());
  const Run chol_crash =
      run_cholesky(a, chol_expect, crashy_fault(chol_quiet.duration));

  jade::TextTable table({"app", "ft-off", "quiet", "2-crashes",
                         "quiet-ovh-%", "crash-ovh-%"});
  table.add_row({"lws", jade::format_double(lws_off.duration, 3),
                 jade::format_double(lws_quiet.duration, 3),
                 jade::format_double(lws_crash.duration, 3),
                 jade::format_double(pct_over(lws_off.duration,
                                              lws_quiet.duration), 1),
                 jade::format_double(pct_over(lws_off.duration,
                                              lws_crash.duration), 1)});
  table.add_row({"cholesky", jade::format_double(chol_off.duration, 3),
                 jade::format_double(chol_quiet.duration, 3),
                 jade::format_double(chol_crash.duration, 3),
                 jade::format_double(pct_over(chol_off.duration,
                                              chol_quiet.duration), 1),
                 jade::format_double(pct_over(chol_off.duration,
                                              chol_crash.duration), 1)});
  table.print(std::cout);

  std::cout << "\n--- fault/recovery counters, LWS crash run ---\n";
  jade::fault_recovery_counters(lws_crash.stats).print(std::cout);
  std::cout << "\n--- fault/recovery counters, Cholesky crash run ---\n";
  jade::fault_recovery_counters(chol_crash.stats).print(std::cout);
  std::cout << "\n(quiet = heartbeats + lossy-transport decorator + write "
               "snapshots, no fault fired;\n 2-crashes = two machines "
               "fail-stop mid-run with 2% message loss, recovered by task "
               "re-execution)\n";

  jade::bench::JsonReport report("bench_fault_recovery");
  add_row(report, "lws", "ft-off", lws_off.duration, lws_off);
  add_row(report, "lws", "quiet", lws_off.duration, lws_quiet);
  add_row(report, "lws", "crashes", lws_off.duration, lws_crash);
  add_row(report, "cholesky", "ft-off", chol_off.duration, chol_off);
  add_row(report, "cholesky", "quiet", chol_off.duration, chol_quiet);
  add_row(report, "cholesky", "crashes", chol_off.duration, chol_crash);
  report.write(
      jade::bench::json_out_path(argc, argv, "BENCH_fault_recovery.json"));
  return 0;
}
