// Figure 4 — "Dynamic Task Graph" of the sparse Cholesky example.
//
// Regenerates the task graph the Jade serializer extracts from the paper's
// 5-column example matrix: one InternalUpdate per column, one
// ExternalUpdate per subdiagonal nonzero, with edges wherever two tasks
// declare conflicting accesses to the same column.  The graph is printed as
// an edge list (DOT syntax) plus depth/width statistics; a larger random
// matrix is summarized afterwards to show the graph scaling.
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "jade/apps/spd_matrix.hpp"

namespace {

struct GraphTask {
  std::string name;
  std::vector<int> reads;
  int writes;  // column written (also read); the only conflict source
};

/// Builds the factorization's task list in serial creation order.
std::vector<GraphTask> factor_tasks(const jade::apps::SparseMatrix& m) {
  std::vector<GraphTask> tasks;
  for (int i = 0; i < m.n; ++i) {
    tasks.push_back({"Internal_" + std::to_string(i), {}, i});
    for (int k = m.col_ptr[i]; k < m.col_ptr[i + 1]; ++k) {
      const int j = m.row_idx[k];
      tasks.push_back({"External_" + std::to_string(i) + "_" +
                           std::to_string(j),
                       {i},
                       j});
    }
  }
  return tasks;
}

/// Derives dependence edges exactly as the per-object declaration queues
/// would: a task depends on the latest earlier task whose access to a
/// shared column conflicts with its own.
std::vector<std::pair<int, int>> dependence_edges(
    const std::vector<GraphTask>& tasks, int columns) {
  std::vector<int> last_writer(columns, -1);
  std::vector<std::vector<int>> readers_since(columns);
  std::vector<std::pair<int, int>> edges;
  for (int t = 0; t < static_cast<int>(tasks.size()); ++t) {
    const auto& task = tasks[t];
    for (int col : task.reads) {  // read-after-write
      if (last_writer[col] >= 0) edges.push_back({last_writer[col], t});
      readers_since[col].push_back(t);
    }
    const int w = task.writes;  // write-after-read + write-after-write
    for (int r : readers_since[w]) edges.push_back({r, t});
    if (readers_since[w].empty() && last_writer[w] >= 0)
      edges.push_back({last_writer[w], t});
    readers_since[w].clear();
    last_writer[w] = t;
  }
  return edges;
}

struct GraphStats {
  int tasks = 0;
  int edges = 0;
  int critical_path = 0;  // in tasks
  double avg_width = 0;   // tasks / critical path
};

GraphStats graph_stats(const std::vector<GraphTask>& tasks,
                       const std::vector<std::pair<int, int>>& edges) {
  std::vector<int> depth(tasks.size(), 1);
  for (auto [a, b] : edges) depth[b] = std::max(depth[b], depth[a] + 1);
  GraphStats s;
  s.tasks = static_cast<int>(tasks.size());
  s.edges = static_cast<int>(edges.size());
  for (int d : depth) s.critical_path = std::max(s.critical_path, d);
  s.avg_width = static_cast<double>(s.tasks) / s.critical_path;
  return s;
}

}  // namespace

int main() {
  using namespace jade::apps;

  std::cout << "=== Figure 4: dynamic task graph of the paper's sparse "
               "Cholesky example ===\n";
  const auto m = paper_example_matrix();
  const auto tasks = factor_tasks(m);
  const auto edges = dependence_edges(tasks, m.n);

  std::cout << "digraph cholesky {\n";
  for (auto [a, b] : edges)
    std::cout << "  " << tasks[a].name << " -> " << tasks[b].name << ";\n";
  std::cout << "}\n";

  const auto s = graph_stats(tasks, edges);
  std::cout << "tasks=" << s.tasks << " edges=" << s.edges
            << " critical_path=" << s.critical_path
            << " avg_width=" << s.avg_width << "\n\n";

  std::cout << "--- same construction on random sparse matrices ---\n";
  std::cout << "n      nnz     tasks   edges   critpath  avg_width\n";
  for (int n : {32, 128, 512}) {
    const auto big = make_spd(n, 4.0 / n, 99);
    const auto bt = factor_tasks(big);
    const auto be = dependence_edges(bt, big.n);
    const auto bs = graph_stats(bt, be);
    std::printf("%-6d %-7zu %-7d %-7d %-9d %.2f\n", n, big.nnz(), bs.tasks,
                bs.edges, bs.critical_path, bs.avg_width);
  }
  return 0;
}
