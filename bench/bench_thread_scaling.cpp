// ThreadEngine scaling on real hardware: dispatch-bound microtasks and the
// paper's sparse Cholesky, swept across worker counts.
//
// The paper's premise (Sections 3.3, 5, 8) is that dynamic concurrency
// detection is cheap enough for coarse-grain tasks to amortize.  The
// microtask fan-out here is the adversarial opposite — thousands of
// near-empty independent tasks — so it measures the engine's dispatch path
// itself: task creation, ready-queue handoff, worker wakeup, completion.
// Cholesky (per-column tasks, Figure 6) is the paper-shaped workload with a
// real dependence structure.
//
// Every cell is verified against the serial reference before it is timed
// (a wrong answer exits non-zero), and the measured rows are written as a
// JSON artifact (--json-out, default BENCH_thread_scaling.json) so CI can
// track the engine's scaling trajectory over time.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "jade/apps/cholesky.hpp"
#include "jade/core/runtime.hpp"
#include "jade/support/stats.hpp"

namespace {

using namespace jade;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cell {
  int workers = 1;
  double seconds = 0;
  double tasks_per_sec = 0;
};

struct Series {
  std::string name;
  std::uint64_t tasks = 0;
  std::vector<Cell> cells;
};

/// `tasks` independent near-empty tasks spread over `objects` shared
/// objects: pure dispatch overhead.  Returns best-of-`reps` wall seconds.
double run_microtask(int workers, int tasks, int objects, int reps) {
  double best = 1e100;
  for (int rep = 0; rep < reps; ++rep) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kThread;
    cfg.threads = workers;
    Runtime rt(std::move(cfg));
    std::vector<SharedRef<std::int64_t>> objs;
    for (int i = 0; i < objects; ++i)
      objs.push_back(rt.alloc<std::int64_t>(1));
    const double t0 = now_seconds();
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i) {
        auto o = objs[static_cast<std::size_t>(i % objects)];
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                     [o](TaskContext& t) { t.read_write(o)[0] += 1; });
      }
    });
    best = std::min(best, now_seconds() - t0);
    std::int64_t total = 0;
    for (int i = 0; i < objects; ++i) total += rt.get(objs[i])[0];
    if (total != tasks) {
      std::cerr << "microtask verification failed: " << total
                << " != " << tasks << "\n";
      std::exit(1);
    }
  }
  return best;
}

/// Per-column Cholesky (Figure 6) on the thread engine; bit-checked against
/// the serial factorization.  Returns (best wall seconds, task count).
std::pair<double, std::uint64_t> run_cholesky(
    const apps::SparseMatrix& a, const apps::SparseMatrix& expect,
    int workers, int reps) {
  double best = 1e100;
  std::uint64_t tasks = 0;
  for (int rep = 0; rep < reps; ++rep) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kThread;
    cfg.threads = workers;
    Runtime rt(std::move(cfg));
    auto jm = apps::upload_matrix(rt, a);
    const double t0 = now_seconds();
    rt.run([&](TaskContext& ctx) { apps::factor_jade(ctx, jm); });
    best = std::min(best, now_seconds() - t0);
    tasks = rt.stats().tasks_created;
    if (apps::download_matrix(rt, jm).cols != expect.cols) {
      std::cerr << "cholesky verification failed (workers=" << workers
                << ")\n";
      std::exit(1);
    }
  }
  return {best, tasks};
}

void write_json(const std::string& path, const std::vector<Series>& series) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_thread_scaling\",\n");
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t s = 0; s < series.size(); ++s) {
    const Series& sr = series[s];
    std::fprintf(f, "    {\"name\": \"%s\", \"tasks\": %llu, \"rows\": [\n",
                 sr.name.c_str(),
                 static_cast<unsigned long long>(sr.tasks));
    for (std::size_t i = 0; i < sr.cells.size(); ++i) {
      const Cell& c = sr.cells[i];
      std::fprintf(f,
                   "      {\"workers\": %d, \"seconds\": %.6f, "
                   "\"tasks_per_sec\": %.1f}%s\n",
                   c.workers, c.seconds, c.tasks_per_sec,
                   i + 1 < sr.cells.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", s + 1 < series.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::cerr << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_thread_scaling.json";
  int tasks = 8192;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      json_path = argv[++i];
    else if (std::strncmp(argv[i], "--json-out=", 11) == 0)
      json_path = argv[i] + 11;
    else if (std::strcmp(argv[i], "--tasks") == 0 && i + 1 < argc)
      tasks = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
  }

  const std::vector<int> worker_sweep = {1, 2, 4, 8};
  std::vector<Series> series;

  std::cout << "=== ThreadEngine scaling (wall clock, best of " << reps
            << ") ===\n";

  {
    Series sr;
    sr.name = "microtask_fanout";
    sr.tasks = static_cast<std::uint64_t>(tasks);
    std::cout << "--- microtask fan-out: " << tasks
              << " near-empty independent tasks over 16 objects ---\n";
    TextTable table({"workers", "seconds", "tasks/sec"});
    for (int w : worker_sweep) {
      const double secs = run_microtask(w, tasks, 16, reps);
      const double rate = tasks / secs;
      sr.cells.push_back({w, secs, rate});
      table.add_row({std::to_string(w), format_double(secs, 4),
                     format_double(rate, 0)});
    }
    table.print(std::cout);
    series.push_back(std::move(sr));
  }

  {
    const int n = 192;
    const auto a = apps::make_spd(n, 5.0 / n, 7);
    auto expect = a;
    apps::factor_serial(expect);
    Series sr;
    sr.name = "cholesky_per_column";
    std::cout << "--- sparse Cholesky, per-column tasks: n=" << n
              << ", nnz=" << a.nnz() << " ---\n";
    TextTable table({"workers", "seconds", "tasks/sec"});
    for (int w : worker_sweep) {
      auto [secs, ntasks] = run_cholesky(a, expect, w, reps);
      sr.tasks = ntasks;
      const double rate = static_cast<double>(ntasks) / secs;
      sr.cells.push_back({w, secs, rate});
      table.add_row({std::to_string(w), format_double(secs, 4),
                     format_double(rate, 0)});
    }
    table.print(std::cout);
    series.push_back(std::move(sr));
  }

  write_json(json_path, series);
  std::cout << "(all cells verified against the serial reference; rows "
               "recorded in "
            << json_path << ")\n";
  return 0;
}
