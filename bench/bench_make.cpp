// Section 7.1 — parallel make.
//
// "The performance of the make program is limited by the amount of
// parallelism in the recompilation process and the available disk
// bandwidth."  This harness sweeps machine counts over four build-graph
// shapes; the chain exposes no parallelism, the wide build scales until the
// serialized disk binds, and the project/random shapes sit in between.
#include <iostream>

#include "bench_format.hpp"
#include "jade/apps/jmake.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

namespace {

double run_build(const jade::apps::Makefile& mf, int machines) {
  using namespace jade;
  using namespace jade::apps;
  const auto expect = make_serial(mf);
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = presets::ideal(machines);
  Runtime rt(std::move(cfg));
  auto jm = upload_make(rt, mf);
  int commands = 0;
  rt.run([&](TaskContext& ctx) { make_jade(ctx, jm, &commands); });
  if (download_make(rt, jm).hash != expect.hash ||
      commands != expect.commands_run) {
    std::cerr << "BUILD MISMATCH\n";
    std::exit(1);
  }
  return rt.sim_duration();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jade::apps;
  struct Shape {
    const char* name;
    Makefile mf;
  };
  Shape shapes[] = {
      {"chain(16)", chain_makefile(16)},
      {"wide(32)", wide_makefile(32)},
      {"project(24,6)", project_makefile(24, 6)},
      {"random(48)", random_makefile(48, 0.08, 17)},
  };

  std::cout << "=== Section 7.1: parallel make — speedup vs machines "
               "(virtual time) ===\n";
  jade::TextTable table(
      {"makefile", "t(1) s", "S(2)", "S(4)", "S(8)", "S(16)"});
  jade::bench::JsonReport report("bench_make");
  for (auto& shape : shapes) {
    const double t1 = run_build(shape.mf, 1);
    std::vector<std::string> row{shape.name, jade::format_double(t1, 3)};
    report.add_row().str("makefile", shape.name).count("machines", 1).num(
        "seconds", t1);
    for (int p : {2, 4, 8, 16}) {
      const double tp = run_build(shape.mf, p);
      row.push_back(jade::format_double(t1 / tp, 2));
      report.add_row()
          .str("makefile", shape.name)
          .count("machines", p)
          .num("seconds", tp)
          .num("speedup", t1 / tp, 3);
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(expected shape: chain ~1x at any machine count; wide "
               "scales then flattens on disk bandwidth; project bounded by "
               "the serial library/link stage)\n";
  report.write(jade::bench::json_out_path(argc, argv, "BENCH_make.json"));
  return 0;
}
