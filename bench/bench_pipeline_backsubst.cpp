// Section 4.2 — pipelining the back substitution with the factorization.
//
// The paper's motivating claim: with only withonly-do (Section 4.1), the
// substitution task "cannot execute until all of the columns produced in
// the factor computation reach their final value ... This wastes
// concurrency"; deferred declarations plus with-cont let it consume each
// column as soon as it is final.  This harness measures both variants and
// the factor-only baseline on a simulated iPSC/860.
#include <iostream>

#include "bench_format.hpp"
#include "jade/apps/backsubst.hpp"
#include "jade/apps/cholesky.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

namespace {

struct Times {
  double factor_only;
  double unpipelined;
  double pipelined;
};

Times measure(int n, double density, int machines) {
  using namespace jade;
  using namespace jade::apps;
  const auto a = make_spd(n, density, 1234);
  // Enough right-hand sides that the substitution's cost is a meaningful
  // fraction of the factorization's (as in repeated solves against one
  // factor); the pipelining gain is then visible end to end.
  const int rhs = 4 * n;

  auto run = [&](int variant) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ipsc860(machines);
    Runtime rt(std::move(cfg));
    auto jm = upload_matrix(rt, a);
    auto x = rt.alloc<double>(static_cast<std::size_t>(n), "x");
    rt.run([&](TaskContext& ctx) {
      factor_jade(ctx, jm);
      if (variant == 1)
        forward_solve_jade(ctx, jm, x, /*pipelined=*/false, rhs);
      if (variant == 2)
        forward_solve_jade(ctx, jm, x, /*pipelined=*/true, rhs);
    });
    return rt.sim_duration();
  };
  return Times{run(0), run(1), run(2)};
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Section 4.2: factor + forward substitution, 8-node "
               "iPSC/860 (virtual seconds) ===\n";
  jade::TextTable table({"n", "factor only", "solve unpipelined",
                         "solve pipelined", "solve overlap %"});
  jade::bench::JsonReport report("bench_pipeline_backsubst");
  for (int n : {128, 256, 512}) {
    const Times t = measure(n, 6.0 / n, 8);
    // Fraction of the substitution's added time hidden inside the
    // factorization by the deferred declarations.
    const double added_unpipelined = t.unpipelined - t.factor_only;
    const double added_pipelined = t.pipelined - t.factor_only;
    const double overlap =
        100.0 * (1.0 - added_pipelined / added_unpipelined);
    table.add_row({static_cast<double>(n), t.factor_only, t.unpipelined,
                   t.pipelined, overlap},
                  3);
    report.add_row()
        .count("n", n)
        .count("machines", 8)
        .num("factor_only", t.factor_only)
        .num("unpipelined", t.unpipelined)
        .num("pipelined", t.pipelined)
        .num("overlap_pct", overlap, 3);
  }
  table.print(std::cout);
  std::cout << "(expected shape: pipelined < unpipelined for every n — the "
               "with-cont conversion synchronizes per column instead of on "
               "the whole factorization)\n";
  report.write(jade::bench::json_out_path(argc, argv,
                                          "BENCH_pipeline_backsubst.json"));
  return 0;
}
