// Shared --trace-out / JADE_TRACE toggle for the figure benches.
//
// Every bench accepts the same switch:
//   bench_fig9_lws_times --trace-out trace.json
//   JADE_TRACE=trace.json bench_fig9_lws_times
// When set, the bench enables structured tracing (src/jade/obs) on one
// representative run and exports it as Chrome trace-event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev.  The flag wins over the
// environment variable.  See docs/OBSERVABILITY.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "jade/core/runtime.hpp"

namespace jade_bench {

struct TraceRequest {
  std::string path;  ///< empty: tracing off
  bool enabled() const { return !path.empty(); }
};

/// Parses `--trace-out <file>` / `--trace-out=<file>` from argv, falling
/// back to the JADE_TRACE environment variable.
inline TraceRequest trace_request(int argc, char** argv) {
  TraceRequest req;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-out") == 0 && i + 1 < argc) {
      req.path = argv[i + 1];
      return req;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      req.path = arg + 12;
      return req;
    }
  }
  if (const char* env = std::getenv("JADE_TRACE");
      env != nullptr && env[0] != '\0')
    req.path = env;
  return req;
}

/// Turns the request into engine configuration (call before Runtime ctor).
/// Only ever turns tracing on — a bench that traces unconditionally keeps
/// tracing even when no export path was requested.
inline void apply_trace(const TraceRequest& req, jade::RuntimeConfig& cfg) {
  if (req.enabled()) cfg.obs.trace = true;
}

/// Exports the recorded trace and tells the user where it went.
inline void write_trace(const TraceRequest& req, jade::Runtime& rt) {
  if (!req.enabled()) return;
  rt.write_chrome_trace(req.path);
  std::fprintf(stderr,
               "trace: wrote %s (load in chrome://tracing or "
               "https://ui.perfetto.dev)\n",
               req.path.c_str());
}

}  // namespace jade_bench
