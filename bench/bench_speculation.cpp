// Speculative task execution (SchedPolicy::spec), measured on the two
// workloads ISSUE 8 names as speculation's home turf:
//
//   pipeline_backsubst  the Section 4.2 pipeline shape: a conservative
//                       refresh stage declares rd_wr on the control object
//                       every round but rarely rewrites it, and the solver
//                       fan-out used to serialize behind that declaration.
//                       Speculation runs the solvers (and the later refresh
//                       stages) ahead against snapshots; everything commits.
//   make_noop_chain     parallel make (Section 7.1) re-run over an already
//                       built chain: every command is a no-op stat, but the
//                       conservative rd_wr(target) declarations serialize
//                       the whole chain.  The paper's "nothing to do" build
//                       goes from O(n) to O(n/machines).
//   make_incremental    a mostly-built project where a quarter of the
//                       sources were touched: commits and aborts mix.
//   conflict_throttle   the adversarial case: a writer that always
//                       materializes its conservative write.  Every bet
//                       against it loses; the conflict-history throttle
//                       must bound the wasted work (asserted below).
//
// Every cell runs in simulated virtual time (deterministic) and is verified
// against the serial reference engine before it is reported; a wrong answer
// exits non-zero.  The spec-off/spec-on rows land in BENCH_speculation.json
// (--json-out) for the bench-baseline CI job.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_format.hpp"
#include "jade/apps/jmake.hpp"
#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

namespace {

using namespace jade;

constexpr int kMachines = 8;

/// A workload returns its observable results; serial engine and both
/// policies must agree exactly.
using Workload = std::function<std::vector<std::int64_t>(Runtime&)>;

RuntimeConfig sim_config(bool spec_on, SpecConfig spec = {}) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  auto cluster = presets::ideal(kMachines);
  cluster.task_dispatch_overhead = 0;
  cluster.task_create_overhead = 0;
  cfg.cluster = std::move(cluster);
  cfg.sched.spec = spec;
  cfg.sched.spec.enabled = spec_on;
  return cfg;
}

struct Cell {
  double seconds = 0;
  RuntimeStats stats;
};

Cell measure(const std::string& scenario, bool spec_on, const Workload& w,
             const std::vector<std::int64_t>& expect, SpecConfig spec = {}) {
  Runtime rt(sim_config(spec_on, spec));
  const std::vector<std::int64_t> got = w(rt);
  if (got != expect) {
    std::cerr << scenario << " (" << (spec_on ? "spec-on" : "spec-off")
              << ") verification failed against the serial reference\n";
    std::exit(1);
  }
  return Cell{rt.sim_duration(), rt.stats()};
}

std::vector<std::int64_t> serial_reference(const Workload& w) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSerial;
  Runtime rt(std::move(cfg));
  return w(rt);
}

// --- scenario 1: the backsubst pipeline shape -------------------------------

constexpr int kPipeRounds = 4;
constexpr int kPipeSolvers = 6;

std::vector<std::int64_t> pipeline_workload(Runtime& rt) {
  auto ctrl = rt.alloc<int>(1);
  std::vector<std::vector<SharedRef<int>>> outs(kPipeRounds);
  for (int r = 0; r < kPipeRounds; ++r)
    for (int i = 0; i < kPipeSolvers; ++i)
      outs[static_cast<std::size_t>(r)].push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kPipeRounds; ++r) {
      // The conservative stage: declares the write, never exercises it
      // (the paper's specifications may over-approximate, Section 4).
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [](TaskContext& t) { t.charge(1e7); });
      for (auto out : outs[static_cast<std::size_t>(r)]) {
        ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                     [ctrl, out, r](TaskContext& t) {
                       t.charge(2e6);
                       t.write(out)[0] = t.read(ctrl)[0] + r + 1;
                     });
      }
    }
  });
  std::vector<std::int64_t> check;
  for (auto& round : outs)
    for (auto out : round) check.push_back(rt.get(out)[0]);
  return check;
}

// --- scenarios 2-3: parallel make over a (mostly) built tree ----------------

std::vector<std::int64_t> make_workload(Runtime& rt,
                                        const apps::Makefile& mf) {
  auto jm = apps::upload_make(rt, mf);
  rt.run([&](TaskContext& ctx) { apps::make_jade_conservative(ctx, jm); });
  const apps::BuildResult out = apps::download_make(rt, jm);
  std::vector<std::int64_t> check = out.mtime;
  for (std::uint64_t h : out.hash)
    check.push_back(static_cast<std::int64_t>(h));
  return check;
}

// --- scenario 4: the adversarial writer -------------------------------------

constexpr int kAdvRounds = 8;

std::vector<std::int64_t> adversarial_workload(Runtime& rt) {
  auto ctrl = rt.alloc<int>(1);
  std::vector<SharedRef<int>> outs;
  for (int r = 0; r < kAdvRounds; ++r) outs.push_back(rt.alloc<int>(1));
  rt.run([&](TaskContext& ctx) {
    for (int r = 0; r < kAdvRounds; ++r) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                   [ctrl, r](TaskContext& t) {
                     t.charge(1e7);
                     t.read_write(ctrl)[0] = r + 1;  // always materializes
                   });
      auto out = outs[static_cast<std::size_t>(r)];
      ctx.withonly([&](AccessDecl& d) { d.rd(ctrl); d.wr(out); },
                   [ctrl, out](TaskContext& t) {
                     t.charge(1e6);
                     t.write(out)[0] = t.read(ctrl)[0];
                   });
    }
  });
  std::vector<std::int64_t> check;
  for (auto out : outs) check.push_back(rt.get(out)[0]);
  return check;
}

void add_row(jade::bench::JsonRow& row, const std::string& scenario,
             bool spec_on, const Cell& c) {
  row.str("scenario", scenario)
      .str("config", spec_on ? "spec-on" : "spec-off")
      .count("machines", kMachines)
      .num("seconds", c.seconds)
      .count("spec_started", c.stats.spec_started)
      .count("spec_committed", c.stats.spec_committed)
      .count("spec_aborted", c.stats.spec_aborted)
      .count("spec_denied", c.stats.spec_denied)
      .count("spec_wasted_bytes", c.stats.spec_wasted_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== speculation: spec-off vs spec-on, " << kMachines
            << " simulated machines (virtual time) ===\n";

  struct Scenario {
    std::string name;
    Workload workload;
    SpecConfig spec;  // enabled flag is overridden per cell
  };
  SpecConfig throttled;
  throttled.max_live = 2;
  throttled.conflict_limit = 2;
  // Per contested object, aborts are bounded by conflict_limit (history
  // charged before the throttle closes) + max_live - 1 (bets already in
  // flight when it does).
  const std::uint64_t kAbortBound =
      static_cast<std::uint64_t>(throttled.conflict_limit +
                                 throttled.max_live - 1);

  auto chain = apps::chain_makefile(24);
  apps::mark_built(chain);
  auto project = apps::project_makefile(24, 6);
  apps::mark_built(project);
  apps::touch_sources(project, 0.25, 42);

  const Scenario scenarios[] = {
      {"pipeline_backsubst", pipeline_workload, {}},
      {"make_noop_chain",
       [&](Runtime& rt) { return make_workload(rt, chain); },
       {}},
      {"make_incremental",
       [&](Runtime& rt) { return make_workload(rt, project); },
       {}},
      {"conflict_throttle", adversarial_workload, throttled},
  };

  jade::bench::JsonReport report("bench_speculation");
  TextTable table({"scenario", "config", "virt sec", "started", "committed",
                   "aborted", "denied", "speedup"});
  bool ok = true;
  for (const Scenario& sc : scenarios) {
    const std::vector<std::int64_t> expect = serial_reference(sc.workload);
    const Cell off = measure(sc.name, false, sc.workload, expect, sc.spec);
    const Cell on = measure(sc.name, true, sc.workload, expect, sc.spec);
    if (off.stats.spec_started != 0) {
      std::cerr << "FAIL: " << sc.name << " speculated with the policy off\n";
      ok = false;
    }
    const double speedup = off.seconds / on.seconds;
    for (const auto* cell : {&off, &on}) {
      const bool spec_on = cell == &on;
      auto& row = report.add_row();
      add_row(row, sc.name, spec_on, *cell);
      if (spec_on) row.num("speedup", speedup, 3);
      table.add_row({sc.name, spec_on ? "spec-on" : "spec-off",
                     format_double(cell->seconds, 4),
                     std::to_string(cell->stats.spec_started),
                     std::to_string(cell->stats.spec_committed),
                     std::to_string(cell->stats.spec_aborted),
                     std::to_string(cell->stats.spec_denied),
                     spec_on ? format_double(speedup, 3) : std::string("-")});
    }

    // Virtual-time facts, not measurement noise: assert the wins and the
    // damage bound.
    if (sc.name == "pipeline_backsubst" && speedup < 1.5) {
      std::cerr << "FAIL: pipeline_backsubst speedup " << speedup
                << "x < 1.5x\n";
      ok = false;
    }
    if (sc.name == "make_noop_chain" && speedup <= 1.0) {
      std::cerr << "FAIL: make_noop_chain is not faster with speculation\n";
      ok = false;
    }
    if (sc.name == "conflict_throttle") {
      if (on.stats.spec_aborted > kAbortBound) {
        std::cerr << "FAIL: conflict_throttle aborted "
                  << on.stats.spec_aborted << " > bound " << kAbortBound
                  << " (conflict_limit + max_live - 1)\n";
        ok = false;
      }
      if (on.stats.spec_denied == 0) {
        std::cerr << "FAIL: conflict_throttle never engaged\n";
        ok = false;
      }
    }
  }
  table.print(std::cout);
  if (!ok) return 1;

  report.write(
      jade::bench::json_out_path(argc, argv, "BENCH_speculation.json"));
  std::cout << "(all cells verified against the serial reference; "
               "spec-off rows match the legacy scheduler)\n";
  return 0;
}
