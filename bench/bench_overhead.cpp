// Runtime-overhead microbenchmarks (Section 8: "The run-time overhead
// associated with detecting and managing dynamic concurrency limits the
// grain size that Jade programs can efficiently use").
//
// Wall-clock costs of the core mechanisms — task creation/dispatch, the
// dynamic access check, with-cont updates, raw serializer operations — plus
// a virtual-time grain-size sweep quantifying the efficiency knee.
#include <benchmark/benchmark.h>

#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"

namespace {

using namespace jade;

/// Creation + inline execution of empty tasks under the serial engine: the
/// pure withonly machinery (spec evaluation, queue insertion, access-check
/// setup, completion).
void BM_WithonlyEmptyTask_Serial(benchmark::State& state) {
  const int tasks = 1024;
  for (auto _ : state) {
    Runtime rt;  // serial engine
    auto v = rt.alloc<double>(8, "v");
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i)
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                     [](TaskContext&) {});
    });
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_WithonlyEmptyTask_Serial)->Unit(benchmark::kMillisecond);

/// Same through the worker pool: adds ready-queue and wakeup costs.
void BM_WithonlyEmptyTask_Thread(benchmark::State& state) {
  const int tasks = 1024;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kThread;
    cfg.threads = static_cast<int>(state.range(0));
    Runtime rt(std::move(cfg));
    // Independent objects so the pool can actually run them concurrently.
    std::vector<SharedRef<double>> objs;
    for (int i = 0; i < 16; ++i) objs.push_back(rt.alloc<double>(8));
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i) {
        auto o = objs[static_cast<std::size_t>(i) % objs.size()];
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                     [](TaskContext&) {});
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_WithonlyEmptyTask_Thread)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The dynamic access check + global->local translation, amortized over one
/// accessor acquisition (the paper's "amortize the cost of one
/// translation/check over many accesses").
void BM_CheckedAccessorAcquire(benchmark::State& state) {
  Runtime rt;
  auto v = rt.alloc<double>(1024, "v");
  const int acquires = 4096;
  for (auto _ : state) {
    rt.engine();  // keep rt alive across iterations; one task per iter
    Runtime fresh;
    auto o = fresh.alloc<double>(1024);
    fresh.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                   [o](TaskContext& t) {
                     for (int i = 0; i < acquires; ++i) {
                       auto span = t.read_write(o);
                       benchmark::DoNotOptimize(span.data());
                     }
                   });
    });
  }
  state.SetItemsProcessed(state.iterations() * acquires);
}
BENCHMARK(BM_CheckedAccessorAcquire);

/// with-cont specification updates: downgrade to deferred, reconvert.
void BM_WithContConvertCycle(benchmark::State& state) {
  const int cycles = 2048;
  for (auto _ : state) {
    Runtime rt;
    auto o = rt.alloc<double>(64);
    rt.run([&](TaskContext& ctx) {
      ctx.withonly([&](AccessDecl& d) { d.rd(o); },
                   [o](TaskContext& t) {
                     for (int i = 0; i < cycles; ++i) {
                       t.with_cont([&](AccessDecl& d) { d.df_rd(o); });
                       t.with_cont([&](AccessDecl& d) { d.rd(o); });
                     }
                   });
    });
  }
  state.SetItemsProcessed(state.iterations() * cycles * 2);
}
BENCHMARK(BM_WithContConvertCycle);

/// Grain-size efficiency on a simulated 8-machine cluster: 64 independent
/// tasks of `grain` work units each.  Reported counter `efficiency` is
/// ideal-time / virtual-time; the knee locates the paper's minimum
/// practical grain.
void BM_GrainSizeEfficiency(benchmark::State& state) {
  const double grain = static_cast<double>(state.range(0));
  const int tasks = 64;
  const int machines = 8;
  double efficiency = 0;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::ipsc860(machines);
    Runtime rt(std::move(cfg));
    std::vector<SharedRef<double>> objs;
    for (int i = 0; i < tasks; ++i) objs.push_back(rt.alloc<double>(16));
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i) {
        auto o = objs[static_cast<std::size_t>(i)];
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(o); },
                     [o, grain](TaskContext& t) {
                       t.charge(grain);
                       t.read_write(o)[0] += 1.0;
                     });
      }
    });
    const double ops = presets::ipsc860(1).machines[0].ops_per_second;
    const double ideal = grain * tasks / ops / machines;
    efficiency = ideal / rt.sim_duration();
  }
  state.counters["efficiency"] = efficiency;
  state.counters["grain_units"] = grain;
}
BENCHMARK(BM_GrainSizeEfficiency)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(10000000);

/// The observability layer's price on the withonly hot path.  Arg(0) runs
/// with tracing disabled (the default) and asserts the zero-cost contract:
/// no recorder is attached and no event is ever buffered.  Arg(1) runs the
/// identical workload with tracing on; comparing the two rows measures the
/// per-task cost of emitting span/instant events into the ring.
void BM_TracingOverhead(benchmark::State& state) {
  const bool traced = state.range(0) != 0;
  const int tasks = 1024;
  std::size_t events = 0;
  for (auto _ : state) {
    RuntimeConfig cfg;
    cfg.obs.trace = traced;
    Runtime rt(std::move(cfg));  // serial engine: pure withonly machinery
    auto v = rt.alloc<double>(8, "v");
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i)
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(v); },
                     [](TaskContext&) {});
    });
    if (!traced && rt.trace() != nullptr) {
      state.SkipWithError("disabled-path violation: recorder attached");
      return;
    }
    if (!traced && !rt.trace_events().empty()) {
      state.SkipWithError("disabled-path violation: events recorded");
      return;
    }
    if (traced) events = rt.trace_events().size();
  }
  state.SetItemsProcessed(state.iterations() * tasks);
  state.counters["trace_events"] = static_cast<double>(events);
}
BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
