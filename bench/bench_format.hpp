// Shared JSON artifact emitter for the figure benches.
//
// Every bench that records machine-readable results (the BENCH_*.json files
// committed at the repo root and refreshed by the bench-baseline CI job)
// emits the same shape:
//
//   { "bench": "<name>", "rows": [ {"k": v, ...}, ... ] }
//
// Field insertion order is preserved and numbers are printed with fixed
// precision, so re-running a deterministic bench diffs cleanly.  The
// --json-out / --json-out=PATH flag convention is parsed here too, so every
// bench spells it the same way.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace jade::bench {

/// One output row: an ordered list of already-JSON-encoded fields.
class JsonRow {
 public:
  JsonRow& str(const std::string& key, const std::string& value) {
    std::string out = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    fields_.emplace_back(key, std::move(out));
    return *this;
  }

  JsonRow& num(const std::string& key, double value, int digits = 9) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    fields_.emplace_back(key, buf);
    return *this;
  }

  JsonRow& count(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonRow& count(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }

  JsonRow& boolean(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// The whole artifact; write() exits non-zero on I/O failure, as benches
/// treat a missing artifact as a failed run.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonRow& add_row() { return rows_.emplace_back(); }

  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "cannot write " << path << "\n";
      std::exit(1);
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 bench_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      const auto& fields = rows_[i].fields();
      for (std::size_t k = 0; k < fields.size(); ++k)
        std::fprintf(f, "%s\"%s\": %s", k == 0 ? "" : ", ",
                     fields[k].first.c_str(), fields[k].second.c_str());
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::cerr << "wrote " << path << "\n";
  }

 private:
  std::string bench_;
  std::vector<JsonRow> rows_;
};

/// Parse `--json-out PATH` / `--json-out=PATH`, falling back to `def`.
inline std::string json_out_path(int argc, char** argv, std::string def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc)
      def = argv[++i];
    else if (std::strncmp(argv[i], "--json-out=", 11) == 0)
      def = argv[i] + 11;
  }
  return def;
}

}  // namespace jade::bench
