// Section 7.2 — the HRV digital image processing pipeline.
//
// Frame throughput as accelerators are added: transform work dominates, so
// throughput scales with accelerators until the serial capture stage (one
// camera on the SPARC host) becomes the bottleneck — the classic pipeline
// saturation the heterogeneous HRV machine was built around.
#include <iostream>

#include "jade/apps/video.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

int main() {
  using namespace jade;
  using namespace jade::apps;

  VideoConfig vc;
  vc.frames = 48;
  vc.width = 96;
  vc.height = 64;
  // A heavier decompress+transform than the defaults, so the sweep shows
  // several accelerators' worth of scaling before the single camera binds.
  vc.transform_work = 6e6;
  const auto expect = video_serial(vc);

  std::cout << "=== Section 7.2: HRV video pipeline — throughput vs "
               "accelerators ===\n";
  TextTable table({"accelerators", "virtual s", "frames/s",
                   "scalars converted", "moves"});
  for (int acc : {1, 2, 3, 4, 6, 8}) {
    RuntimeConfig cfg;
    cfg.engine = EngineKind::kSim;
    cfg.cluster = presets::hrv(acc);
    Runtime rt(std::move(cfg));
    auto v = upload_video(rt, vc);
    rt.run([&](TaskContext& ctx) { video_jade(ctx, v, acc); });
    if (download_video(rt, v) != expect) {
      std::cerr << "FRAME MISMATCH\n";
      return 1;
    }
    const double t = rt.sim_duration();
    table.add_row({format_double(acc, 0), format_double(t, 4),
                   format_double(vc.frames / t, 1),
                   std::to_string(rt.stats().scalars_converted),
                   std::to_string(rt.stats().object_moves)});
  }
  table.print(std::cout);
  std::cout << "(expected shape: near-linear until capture on the single "
               "SPARC frame source saturates; every frame hop converts "
               "formats between the big-endian host and little-endian "
               "accelerators)\n";
  return 0;
}
