// Figure 10 — "Speedups for Liquid Water Simulation".
//
// Same runs as Figure 9, reported as speedup over each platform's own
// uniprocessor time.  Expected shape (paper): near-linear speedup on DASH,
// slightly below it on the iPSC/860, and early saturation on Mica — "There
// is ample coarse-grain parallelism in the LWS application; the figures
// confirm that Jade can give good performance for such an application over
// a range of architectures."
#include <iostream>
#include <map>

#include "jade/support/stats.hpp"
#include "lws_harness.hpp"

#include "bench_format.hpp"

int main(int argc, char** argv) {
  using namespace jade_bench;
  const TraceRequest trace = trace_request(argc, argv);
  const auto wc = lws_config();
  const auto initial = jade::apps::make_water(wc);
  auto expect = initial;
  jade::apps::water_run_serial(wc, expect);

  const auto platforms = lws_platforms();
  std::map<std::string, double> t1;
  for (const auto& platform : platforms)
    t1[platform.name] = run_lws(wc, initial, expect, platform, 1);

  std::cout << "=== Figure 10: LWS speedups (vs each platform's 1-processor "
               "time), "
            << wc.molecules << " molecules ===\n";
  jade::TextTable table({"processors", "ipsc860", "mica", "dash"});
  jade::bench::JsonReport report("fig10_lws_speedup");
  for (int p : lws_machine_counts()) {
    std::vector<double> row{static_cast<double>(p)};
    for (const auto& platform : platforms) {
      // Traced representative run: dash/16 (the best-scaling platform).
      const bool traced_run = platform.name == "dash" && p == 16;
      const double tp =
          p == 1 ? t1[platform.name]
                 : run_lws(wc, initial, expect, platform, p, {}, nullptr,
                           traced_run ? trace : TraceRequest{});
      row.push_back(t1[platform.name] / tp);
      report.add_row()
          .count("processors", p)
          .str("platform", platform.name)
          .num("speedup", t1[platform.name] / tp, 4);
    }
    table.add_row(row, 2);
  }
  table.print(std::cout);
  report.write(jade::bench::json_out_path(argc, argv,
                                          "BENCH_fig10_lws_speedup.json"));
  return 0;
}
