// Kernel data-layout bench: scalar (AoS, vectorization off) vs SoA
// (structure-of-arrays lanes, auto-vectorized) body times for the inner
// loops of the compute apps, plus the relax solver's strip-parallel scaling
// in simulated virtual time.
//
// Every SoA row is verified against its scalar counterpart before timing —
// bit-identical where the kernel preserves the per-element operation
// sequence (integrations, column scaling, relax rows, multi-RHS solve), to
// 1e-12 relative for the algebraically rearranged water force.  The bench
// exits non-zero if verification fails, if any timing is nonsensical, or if
// no kernel clears a 2x body-time improvement (the layout rework's
// acceptance bar).  Rows land in BENCH_kernels.json (--json-out) for the
// bench-baseline CI job.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "jade/apps/backsubst.hpp"
#include "jade/apps/kernels.hpp"
#include "jade/apps/relax.hpp"
#include "jade/apps/spd_matrix.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/rng.hpp"
#include "jade/support/simd.hpp"

#include "bench_format.hpp"

namespace {

using jade::Rng;
namespace kernels = jade::apps::kernels;

/// Best-of-k wall-clock seconds for one call of `fn`.
template <typename Fn>
double time_body(Fn&& fn, int repeats = 7) {
  using clock = std::chrono::steady_clock;
  fn();  // warm caches and page in the working set
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

double max_rel_diff(const double* a, const double* b, std::size_t n) {
  double worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max({std::abs(a[i]), std::abs(b[i]), 1e-30});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

void fill_random(double* p, std::size_t n, Rng& rng, double lo, double hi) {
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.next_double(lo, hi);
}

struct KernelResult {
  const char* kernel;
  double scalar_s;
  double soa_s;
  bool bit_identical;
  double max_rel;
};

KernelResult bench_water_forces() {
  constexpr int kN = 900;
  const auto un = static_cast<std::size_t>(kN);
  Rng rng(11);
  std::vector<double> aos(3 * un);
  fill_random(aos.data(), aos.size(), rng, 0.0, 20.0);
  jade::simd::AlignedBuffer<double> lanes(3 * un);
  for (int i = 0; i < kN; ++i) {
    lanes.data()[i] = aos[3 * i];
    lanes.data()[un + i] = aos[3 * i + 1];
    lanes.data()[2 * un + i] = aos[3 * i + 2];
  }
  std::vector<double> f_scalar(3 * un);
  jade::simd::AlignedBuffer<double> f_soa(3 * un);

  const double ts = time_body(
      [&] { kernels::water_forces_scalar(aos.data(), kN, 0, kN,
                                         f_scalar.data()); });
  const double tv = time_body([&] {
    kernels::water_forces_soa(lanes.data(), lanes.data() + un,
                              lanes.data() + 2 * un, kN, 0, kN, f_soa.data(),
                              f_soa.data() + un, f_soa.data() + 2 * un);
  });
  // Compare in a common layout.
  std::vector<double> soa_as_aos(3 * un);
  for (int i = 0; i < kN; ++i) {
    soa_as_aos[3 * i] = f_soa.data()[i];
    soa_as_aos[3 * i + 1] = f_soa.data()[un + i];
    soa_as_aos[3 * i + 2] = f_soa.data()[2 * un + i];
  }
  return {"water_forces", ts, tv, false,
          max_rel_diff(f_scalar.data(), soa_as_aos.data(), 3 * un)};
}

KernelResult bench_water_integrate() {
  constexpr int kN = 1 << 15;
  constexpr int kSteps = 64;  // amortize per-call overhead
  const auto un = static_cast<std::size_t>(kN);
  Rng rng(12);
  std::vector<double> force(3 * un), pos0(3 * un);
  fill_random(force.data(), force.size(), rng, -1.0, 1.0);
  fill_random(pos0.data(), pos0.size(), rng, 0.0, 10.0);

  std::vector<double> pos_s, vel_s(3 * un, 0.0);
  auto scalar_pass = [&] {
    for (int s = 0; s < kSteps; ++s)
      kernels::water_integrate_scalar(kN, 1e-3, force.data(), pos_s.data(),
                                      vel_s.data());
  };
  // SoA lanes: same values, lane layout (force reinterpreted as lanes is
  // fine for timing, but verification uses matching layouts).
  jade::simd::AlignedBuffer<double> pos_v(3 * un), vel_v(3 * un),
      f_lanes(3 * un);
  for (int i = 0; i < kN; ++i) {
    f_lanes.data()[i] = force[3 * i];
    f_lanes.data()[un + i] = force[3 * i + 1];
    f_lanes.data()[2 * un + i] = force[3 * i + 2];
  }
  auto soa_pass = [&] {
    for (int s = 0; s < kSteps; ++s)
      kernels::water_integrate_soa(
          kN, 1e-3, f_lanes.data(), f_lanes.data() + un,
          f_lanes.data() + 2 * un, pos_v.data(), pos_v.data() + un,
          pos_v.data() + 2 * un, vel_v.data(), vel_v.data() + un,
          vel_v.data() + 2 * un);
  };

  pos_s = pos0;
  std::fill(vel_s.begin(), vel_s.end(), 0.0);
  const double ts = time_body(scalar_pass);
  for (int i = 0; i < kN; ++i) {
    pos_v.data()[i] = pos0[3 * i];
    pos_v.data()[un + i] = pos0[3 * i + 1];
    pos_v.data()[2 * un + i] = pos0[3 * i + 2];
  }
  std::fill(vel_v.data(), vel_v.data() + 3 * un, 0.0);
  const double tv = time_body(soa_pass);

  // Verification on fresh state: one pass each, bitwise comparison.
  pos_s = pos0;
  std::fill(vel_s.begin(), vel_s.end(), 0.0);
  scalar_pass();
  for (int i = 0; i < kN; ++i) {
    pos_v.data()[i] = pos0[3 * i];
    pos_v.data()[un + i] = pos0[3 * i + 1];
    pos_v.data()[2 * un + i] = pos0[3 * i + 2];
  }
  std::fill(vel_v.data(), vel_v.data() + 3 * un, 0.0);
  soa_pass();
  bool identical = true;
  for (int i = 0; i < kN && identical; ++i)
    identical = pos_s[3 * i] == pos_v.data()[i] &&
                pos_s[3 * i + 1] == pos_v.data()[un + i] &&
                pos_s[3 * i + 2] == pos_v.data()[2 * un + i];
  return {"water_integrate", ts, tv, identical, 0.0};
}

KernelResult bench_bh_integrate() {
  constexpr int kN = 1 << 15;
  constexpr int kSteps = 64;
  const auto un = static_cast<std::size_t>(kN);
  Rng rng(13);
  std::vector<double> force(2 * un), mass(un), pos0(2 * un);
  fill_random(force.data(), force.size(), rng, -1.0, 1.0);
  fill_random(mass.data(), mass.size(), rng, 0.5, 2.0);
  fill_random(pos0.data(), pos0.size(), rng, 0.0, 100.0);

  std::vector<double> pos_s, vel_s(2 * un, 0.0);
  auto scalar_pass = [&] {
    for (int s = 0; s < kSteps; ++s)
      kernels::bh_integrate_scalar(kN, 1e-2, force.data(), mass.data(),
                                   pos_s.data(), vel_s.data());
  };
  jade::simd::AlignedBuffer<double> pos_v(2 * un), vel_v(2 * un),
      f_lanes(2 * un);
  for (int i = 0; i < kN; ++i) {
    f_lanes.data()[i] = force[2 * i];
    f_lanes.data()[un + i] = force[2 * i + 1];
  }
  auto soa_pass = [&] {
    for (int s = 0; s < kSteps; ++s)
      kernels::bh_integrate_soa(kN, 1e-2, f_lanes.data(), f_lanes.data() + un,
                                mass.data(), pos_v.data(), pos_v.data() + un,
                                vel_v.data(), vel_v.data() + un);
  };

  pos_s = pos0;
  std::fill(vel_s.begin(), vel_s.end(), 0.0);
  const double ts = time_body(scalar_pass);
  for (int i = 0; i < kN; ++i) {
    pos_v.data()[i] = pos0[2 * i];
    pos_v.data()[un + i] = pos0[2 * i + 1];
  }
  std::fill(vel_v.data(), vel_v.data() + 2 * un, 0.0);
  const double tv = time_body(soa_pass);

  pos_s = pos0;
  std::fill(vel_s.begin(), vel_s.end(), 0.0);
  scalar_pass();
  for (int i = 0; i < kN; ++i) {
    pos_v.data()[i] = pos0[2 * i];
    pos_v.data()[un + i] = pos0[2 * i + 1];
  }
  std::fill(vel_v.data(), vel_v.data() + 2 * un, 0.0);
  soa_pass();
  bool identical = true;
  for (int i = 0; i < kN && identical; ++i)
    identical = pos_s[2 * i] == pos_v.data()[i] &&
                pos_s[2 * i + 1] == pos_v.data()[un + i];
  return {"bh_integrate", ts, tv, identical, 0.0};
}

KernelResult bench_cholesky_scale() {
  constexpr std::size_t kLen = 1 << 16;
  constexpr int kSteps = 256;
  Rng rng(14);
  std::vector<double> init(kLen);
  fill_random(init.data(), kLen, rng, 0.5, 2.0);
  // Alternate d and 1/d so values stay in range over thousands of calls.
  const double d = 1.0 + 1e-7;
  std::vector<double> vals_s = init;
  const double ts = time_body([&] {
    for (int s = 0; s < kSteps; s += 2) {
      kernels::cholesky_scale_column_scalar(vals_s.data(), kLen, d);
      kernels::cholesky_scale_column_scalar(vals_s.data(), kLen, 1.0 / d);
    }
  });
  std::vector<double> vals_v = init;
  const double tv = time_body([&] {
    for (int s = 0; s < kSteps; s += 2) {
      kernels::cholesky_scale_column_soa(vals_v.data(), kLen, d);
      kernels::cholesky_scale_column_soa(vals_v.data(), kLen, 1.0 / d);
    }
  });
  vals_s = init;
  vals_v = init;
  kernels::cholesky_scale_column_scalar(vals_s.data(), kLen, 1.7);
  kernels::cholesky_scale_column_soa(vals_v.data(), kLen, 1.7);
  return {"cholesky_scale", ts, tv, vals_s == vals_v, 0.0};
}

KernelResult bench_backsubst_multi_rhs() {
  constexpr int kN = 220;
  constexpr int kRhs = 24;
  auto l = jade::apps::make_spd(kN, 0.1, 77);
  jade::apps::factor_serial(l);
  Rng rng(15);
  std::vector<double> b(static_cast<std::size_t>(kN) * kRhs);
  fill_random(b.data(), b.size(), rng, -1.0, 1.0);

  // Scalar layout: per-RHS contiguous vectors, x[v*n + row].
  std::vector<double> x_s(b.size());
  auto scalar_pass = [&] {
    for (int v = 0; v < kRhs; ++v)
      for (int row = 0; row < kN; ++row)
        x_s[static_cast<std::size_t>(v) * kN + row] =
            b[static_cast<std::size_t>(row) * kRhs + v];
    for (int j = 0; j < kN; ++j)
      kernels::backsubst_apply_column_scalar(
          l.cols[static_cast<std::size_t>(j)].data(),
          l.row_idx.data() + l.col_ptr[j], l.nnz_below(j), j, kN, kRhs,
          x_s.data());
  };
  // SoA layout: RHS-major block, x[row*nrhs + v].
  std::vector<double> x_v(b.size());
  auto soa_pass = [&] {
    std::copy(b.begin(), b.end(), x_v.begin());
    for (int j = 0; j < kN; ++j)
      kernels::backsubst_apply_column_soa(
          l.cols[static_cast<std::size_t>(j)].data(),
          l.row_idx.data() + l.col_ptr[j], l.nnz_below(j), j, kRhs,
          x_v.data());
  };
  const double ts = time_body(scalar_pass, 15);
  const double tv = time_body(soa_pass, 15);
  scalar_pass();
  soa_pass();
  bool identical = true;
  for (int v = 0; v < kRhs && identical; ++v)
    for (int row = 0; row < kN && identical; ++row)
      identical = x_s[static_cast<std::size_t>(v) * kN + row] ==
                  x_v[static_cast<std::size_t>(row) * kRhs + v];
  return {"backsubst_multi_rhs", ts, tv, identical, 0.0};
}

KernelResult bench_relax_row() {
  constexpr int kRows = 256;
  constexpr int kCols = 4096;
  const auto total = static_cast<std::size_t>(kRows) * kCols;
  Rng rng(16);
  std::vector<double> src(total);
  fill_random(src.data(), total, rng, -1.0, 1.0);
  std::vector<double> out_s(total), out_v(total);
  auto sweep = [&](auto&& row_fn, std::vector<double>& out) {
    for (int r = 1; r < kRows - 1; ++r) {
      const double* mid = src.data() + static_cast<std::size_t>(r) * kCols;
      row_fn(mid - kCols, mid, mid + kCols, kCols, 0.9,
             out.data() + static_cast<std::size_t>(r) * kCols);
    }
  };
  const double ts =
      time_body([&] { sweep(kernels::relax_row_scalar, out_s); });
  const double tv = time_body([&] { sweep(kernels::relax_row_soa, out_v); });
  sweep(kernels::relax_row_scalar, out_s);
  sweep(kernels::relax_row_soa, out_v);
  bool identical = true;
  for (int r = 1; r < kRows - 1 && identical; ++r)
    for (int c = 0; c < kCols && identical; ++c)
      identical = out_s[static_cast<std::size_t>(r) * kCols + c] ==
                  out_v[static_cast<std::size_t>(r) * kCols + c];
  return {"relax_row", ts, tv, identical, 0.0};
}

/// The relax solver end to end on the simulated DASH: strip-parallel
/// scaling in virtual time, serial-verified.
double relax_sim_speedup(bool* verified) {
  jade::apps::RelaxConfig c;
  c.rows = 128;
  c.cols = 128;
  c.strips = 8;
  c.iterations = 16;
  auto expect = jade::apps::make_relax(c);
  jade::apps::relax_run_serial(c, expect);
  auto run = [&](int machines) {
    jade::RuntimeConfig cfg;
    cfg.engine = jade::EngineKind::kSim;
    cfg.cluster = jade::presets::dash(machines);
    jade::Runtime rt(std::move(cfg));
    auto w = jade::apps::upload_relax(rt, c, jade::apps::make_relax(c));
    rt.run([&](jade::TaskContext& ctx) { jade::apps::relax_run_jade(ctx, w); });
    if (jade::apps::download_relax(rt, w).grid != expect.grid)
      *verified = false;
    return rt.sim_duration();
  };
  *verified = true;
  return run(1) / run(8);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<KernelResult> results{
      bench_water_forces(),   bench_water_integrate(),
      bench_bh_integrate(),   bench_cholesky_scale(),
      bench_backsubst_multi_rhs(), bench_relax_row(),
  };

  jade::bench::JsonReport report("kernels");
  std::printf("=== Kernel body times: scalar (AoS, no-vec) vs SoA "
              "(vectorized) ===\n");
  std::printf("%-22s %12s %12s %9s  %s\n", "kernel", "scalar_ms", "soa_ms",
              "speedup", "agreement");
  double best = 0;
  bool ok = true;
  for (const auto& r : results) {
    const double speedup = r.scalar_s / r.soa_s;
    best = std::max(best, speedup);
    const bool agrees = r.bit_identical || r.max_rel < 1e-12;
    ok = ok && agrees && r.scalar_s > 0 && r.soa_s > 0;
    std::printf("%-22s %12.3f %12.3f %8.2fx  ", r.kernel, r.scalar_s * 1e3,
                r.soa_s * 1e3, speedup);
    if (r.bit_identical)
      std::printf("bit-identical\n");
    else
      std::printf("rel<=%.1e\n", r.max_rel);
    report.add_row()
        .str("kernel", r.kernel)
        .num("scalar_ms", r.scalar_s * 1e3, 4)
        .num("soa_ms", r.soa_s * 1e3, 4)
        .num("speedup", speedup, 3)
        .boolean("bit_identical", r.bit_identical)
        .boolean("verified", agrees);
  }

  bool relax_ok = false;
  const double sim_speedup = relax_sim_speedup(&relax_ok);
  std::printf("\nrelax solver, simulated dash 1->8 machines: %.2fx "
              "(virtual time, %s)\n",
              sim_speedup, relax_ok ? "serial-verified" : "MISMATCH");
  report.add_row()
      .str("kernel", "relax_solver_sim_dash")
      .count("machines", 8)
      .num("speedup", sim_speedup, 3)
      .boolean("verified", relax_ok);
  ok = ok && relax_ok && sim_speedup > 2.0;

  report.write(
      jade::bench::json_out_path(argc, argv, "BENCH_kernels.json"));

  if (!ok) {
    std::printf("FAIL: verification failed on at least one kernel\n");
    return 1;
  }
  if (best < 2.0) {
    std::printf("FAIL: no kernel cleared the 2x layout-speedup bar "
                "(best %.2fx)\n", best);
    return 1;
  }
  std::printf("best layout speedup %.2fx (>= 2x bar met); all kernels "
              "verified\n", best);
  return 0;
}
