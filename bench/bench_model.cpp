// CostModel validation + ModelPlanner auto-tuning (docs/MODEL.md).
//
// Part 1 — prediction error.  Every scenario below is profiled once
// (model::profile_workload: four cheap canonical SimEngine runs) and then
// really executed on its *target* platform under four policy variants
// (contexts=1, contexts=4, locality off, speculation on).  One global
// CostModel is fitted across all scenarios' variant runs; the default
// policy's run on each target is *held out* of the fit and predicted.  The
// reported figure is the absolute relative error of those held-out
// predictions; the bench exits non-zero when the median exceeds 15%.
//
// Part 2 — auto-tuning.  Per scenario a ModelPlanner (the fitted model +
// that scenario's features) is handed to the Runtime as
// RuntimeConfig::planner; plan_policy searches the candidate grid and the
// run executes whatever policy it returns.  The tuned run must match or
// beat the hand-set default on every scenario (it deviates only when the
// model predicts a >10% win), and must actually win >=10% on at least two.
// Every run — training, validation, tuned — is verified bit-exactly against
// the serial reference engine.
//
// Everything is SimEngine virtual time: deterministic, machine-independent,
// honest about scaling on a 1-core CI container.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_format.hpp"
#include "jade/apps/cholesky.hpp"
#include "jade/apps/jmake.hpp"
#include "jade/apps/relax.hpp"
#include "jade/apps/spd_matrix.hpp"
#include "jade/apps/water.hpp"
#include "jade/core/runtime.hpp"
#include "jade/mach/presets.hpp"
#include "jade/model/cost_model.hpp"
#include "jade/model/model_planner.hpp"
#include "jade/model/profiler.hpp"
#include "jade/support/stats.hpp"

namespace {

using namespace jade;

/// A workload returns its observable results; every engine and policy must
/// reproduce them bit-exactly.
using Workload = std::function<std::vector<std::int64_t>(Runtime&)>;

std::int64_t bits(double v) {
  std::int64_t out;
  std::memcpy(&out, &v, sizeof out);
  return out;
}

// --- workloads --------------------------------------------------------------

Workload cholesky_workload(int n, int block, std::uint64_t seed) {
  return [n, block, seed](Runtime& rt) {
    const apps::SparseMatrix a = apps::make_spd(n, 5.0 / n, seed);
    apps::JadeBlockedSparse jm = apps::upload_blocked(rt, a, block);
    rt.run([&](TaskContext& ctx) { apps::factor_jade_blocked(ctx, jm); });
    const apps::SparseMatrix f = apps::download_blocked(rt, jm);
    double sum = 0;
    for (const auto& col : f.cols)
      for (double v : col) sum += v;
    return std::vector<std::int64_t>{bits(sum)};
  };
}

Workload relax_workload(apps::RelaxConfig rc) {
  return [rc](Runtime& rt) {
    const apps::RelaxState init = apps::make_relax(rc);
    apps::JadeRelax w = apps::upload_relax(rt, rc, init);
    rt.run([&](TaskContext& ctx) { apps::relax_run_jade(ctx, w); });
    return std::vector<std::int64_t>{
        bits(apps::relax_checksum(apps::download_relax(rt, w)))};
  };
}

Workload water_workload(apps::WaterConfig wc) {
  return [wc](Runtime& rt) {
    const apps::WaterState init = apps::make_water(wc);
    apps::JadeWater w = apps::upload_water(rt, wc, init);
    rt.run([&](TaskContext& ctx) { apps::water_run_jade(ctx, w); });
    return std::vector<std::int64_t>{
        bits(apps::water_checksum(apps::download_water(rt, w)))};
  };
}

/// The Section 4.2 pipeline shape (bench_speculation's home-turf win): a
/// conservative rd_wr control stage per round, then a solver fan-out.
Workload pipeline_workload(int rounds, int solvers) {
  return [rounds, solvers](Runtime& rt) {
    auto ctrl = rt.alloc<int>(1);
    std::vector<std::vector<SharedRef<int>>> outs(
        static_cast<std::size_t>(rounds));
    for (auto& round : outs)
      for (int i = 0; i < solvers; ++i) round.push_back(rt.alloc<int>(1));
    rt.run([&](TaskContext& ctx) {
      for (int r = 0; r < rounds; ++r) {
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(ctrl); },
                     [](TaskContext& t) { t.charge(1e7); });
        for (auto out : outs[static_cast<std::size_t>(r)]) {
          ctx.withonly([&](AccessDecl& d) {
            d.rd(ctrl);
            d.wr(out);
          },
                       [ctrl, out, r](TaskContext& t) {
                         t.charge(2e6);
                         t.write(out)[0] = t.read(ctrl)[0] + r + 1;
                       });
        }
      }
    });
    std::vector<std::int64_t> check;
    for (auto& round : outs)
      for (auto out : round) check.push_back(rt.get(out)[0]);
    return check;
  };
}

/// Parallel make over an already-built chain: every command is a no-op but
/// the conservative rd_wr(target) declarations serialize the chain.
Workload make_chain_workload(int length) {
  apps::Makefile mf = apps::chain_makefile(length);
  apps::mark_built(mf);
  return [mf](Runtime& rt) {
    apps::JadeMake jm = apps::upload_make(rt, mf);
    rt.run([&](TaskContext& ctx) { apps::make_jade_conservative(ctx, jm); });
    const apps::BuildResult out = apps::download_make(rt, jm);
    std::vector<std::int64_t> check = out.mtime;
    for (std::uint64_t h : out.hash)
      check.push_back(static_cast<std::int64_t>(h));
    return check;
  };
}

/// A root-driven flood of independent tasks (pure load balancing).
Workload fanout_workload(int tasks, double grain) {
  return [tasks, grain](Runtime& rt) {
    std::vector<SharedRef<double>> outs;
    for (int i = 0; i < tasks; ++i) outs.push_back(rt.alloc<double>(64));
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < tasks; ++i) {
        auto out = outs[static_cast<std::size_t>(i)];
        ctx.withonly([&](AccessDecl& d) { d.wr(out); },
                     [out, i, grain](TaskContext& t) {
                       t.charge(grain);
                       t.write(out)[0] = 1.5 * i;
                     });
      }
    });
    double sum = 0;
    for (auto out : outs) sum += rt.get(out)[0];
    return std::vector<std::int64_t>{bits(sum)};
  };
}

/// A pure dependence chain (critical-path bound; parallelism 1).
Workload chain_workload(int length, double grain) {
  return [length, grain](Runtime& rt) {
    auto acc = rt.alloc<double>(8);
    rt.run([&](TaskContext& ctx) {
      for (int i = 0; i < length; ++i)
        ctx.withonly([&](AccessDecl& d) { d.rd_wr(acc); },
                     [acc, grain](TaskContext& t) {
                       t.charge(grain);
                       t.read_write(acc)[0] += 1.0;
                     });
    });
    return std::vector<std::int64_t>{bits(rt.get(acc)[0])};
  };
}

// --- harness ----------------------------------------------------------------

ClusterConfig ideal_fast(int machines) {
  ClusterConfig c = presets::ideal(machines);
  c.task_dispatch_overhead = 0;
  c.task_create_overhead = 0;
  return c;
}

struct Scenario {
  std::string name;
  std::string topology;
  ClusterConfig target;
  Workload workload;
};

std::vector<std::int64_t> serial_reference(const Workload& w) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSerial;
  Runtime rt(std::move(cfg));
  return w(rt);
}

/// One SimEngine run on (cluster, policy [, planner]); verifies the result
/// and returns virtual seconds.
double run_sim(const Scenario& sc, const SchedPolicy& policy,
               const std::vector<std::int64_t>& expect,
               std::shared_ptr<const model::Planner> planner = nullptr) {
  RuntimeConfig cfg;
  cfg.engine = EngineKind::kSim;
  cfg.cluster = sc.target;
  cfg.sched = policy;
  cfg.planner = std::move(planner);
  Runtime rt(std::move(cfg));
  if (sc.workload(rt) != expect) {
    std::cerr << sc.name << ": verification failed against the serial "
              << "reference\n";
    std::exit(1);
  }
  return rt.sim_duration();
}

std::string policy_string(const SchedPolicy& p) {
  return "ctx=" + std::to_string(p.contexts_per_machine) +
         (p.locality ? ",loc" : ",noloc") + (p.spec.enabled ? ",spec" : "");
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

int main(int argc, char** argv) {
  apps::RelaxConfig relax_small;
  relax_small.rows = 64;
  relax_small.cols = 64;
  relax_small.strips = 8;
  relax_small.iterations = 8;

  apps::WaterConfig water_small;
  water_small.molecules = 343;
  water_small.groups = 12;
  water_small.timesteps = 2;

  const std::vector<Scenario> scenarios = {
      {"cholesky", "sharedbus", presets::mica(8),
       cholesky_workload(120, 6, 7)},
      {"cholesky_big", "hypercube", presets::ipsc860(8),
       cholesky_workload(160, 8, 11)},
      {"relax", "mesh", presets::mesh(8), relax_workload(relax_small)},
      {"relax_hetero", "crossbar", presets::hrv(7),
       relax_workload(relax_small)},
      {"water_lws", "hypercube", presets::ipsc860(8),
       water_workload(water_small)},
      {"water_bus", "sharedbus", presets::mica(8),
       water_workload(water_small)},
      {"fanout_flood", "sharedbus", presets::mica(8),
       fanout_workload(64, 5e5)},
      {"serial_chain", "mesh", presets::mesh(8), chain_workload(32, 1e6)},
      {"pipeline_backsubst", "ideal", ideal_fast(8), pipeline_workload(4, 6)},
      {"make_noop_chain", "ideal", ideal_fast(8), make_chain_workload(24)},
  };

  // The four training variants around the default policy; the default
  // itself is held out and predicted.
  const SchedPolicy kDefault;
  std::vector<SchedPolicy> variants;
  {
    SchedPolicy p;
    p.contexts_per_machine = 1;
    variants.push_back(p);
    p = kDefault;
    p.contexts_per_machine = 4;
    variants.push_back(p);
    p = kDefault;
    p.locality = false;
    variants.push_back(p);
    p = kDefault;
    p.spec.enabled = true;
    variants.push_back(p);
  }

  std::cout << "=== cost-model validation: " << scenarios.size()
            << " scenarios, " << variants.size()
            << " training variants each (virtual time) ===\n";

  std::vector<std::vector<std::int64_t>> expects;
  std::vector<model::WorkloadFeatures> features;
  std::vector<double> actual_default;
  std::vector<model::Observation> training;
  for (const Scenario& sc : scenarios) {
    expects.push_back(serial_reference(sc.workload));
    model::ProfileOptions popts;
    popts.machines = sc.target.machine_count();
    features.push_back(model::profile_workload(
        [&](Runtime& rt) { (void)sc.workload(rt); }, popts));
    for (const SchedPolicy& p : variants)
      training.push_back({features.back(), sc.target, p,
                          run_sim(sc, p, expects.back())});
    actual_default.push_back(run_sim(sc, kDefault, expects.back()));
  }

  model::CostModel cost;
  cost.fit(training);
  std::cout << "fitted coefficients:";
  for (double c : cost.coefficients()) std::cout << " " << c;
  std::cout << " (" << training.size() << " observations)\n";

  jade::bench::JsonReport report("bench_model");
  TextTable table({"scenario", "topology", "predicted", "actual", "err"});
  std::vector<double> errors;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const double predicted =
        cost.predict(features[s], scenarios[s].target, kDefault);
    const double err =
        std::fabs(predicted - actual_default[s]) / actual_default[s];
    errors.push_back(err);
    report.add_row()
        .str("kind", "validation")
        .str("scenario", scenarios[s].name)
        .str("topology", scenarios[s].topology)
        .count("machines", scenarios[s].target.machine_count())
        .num("predicted_seconds", predicted)
        .num("actual_seconds", actual_default[s])
        .num("abs_rel_error", err, 4);
    table.add_row({scenarios[s].name, scenarios[s].topology,
                   format_double(predicted, 4),
                   format_double(actual_default[s], 4),
                   format_double(100 * err, 1) + "%"});
  }
  const double med = median(errors);
  table.print(std::cout);
  std::cout << "median absolute relative error: " << format_double(100 * med, 2)
            << "% over " << errors.size() << " held-out predictions\n\n";

  bool ok = true;
  if (med > 0.15) {
    std::cerr << "FAIL: median prediction error " << med << " > 0.15\n";
    ok = false;
  }

  // --- part 2: the auto-tuner ----------------------------------------------
  std::cout << "=== model-driven policy auto-tuning (ModelPlanner) ===\n";
  TextTable tuner({"scenario", "policy", "default", "auto", "speedup"});
  int wins = 0;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    auto planner = std::make_shared<model::ModelPlanner>(cost, features[s]);
    const SchedPolicy chosen =
        planner->plan_policy(scenarios[s].target, kDefault);
    const double auto_seconds =
        run_sim(scenarios[s], kDefault, expects[s], planner);
    const double speedup = actual_default[s] / auto_seconds;
    const bool deviated =
        chosen.contexts_per_machine != kDefault.contexts_per_machine ||
        chosen.locality != kDefault.locality ||
        chosen.spec.enabled != kDefault.spec.enabled;
    if (speedup >= 1.10) ++wins;
    if (auto_seconds > actual_default[s] * 1.0001) {
      std::cerr << "FAIL: " << scenarios[s].name
                << ": tuned policy lost to the default ("
                << auto_seconds << " > " << actual_default[s] << ")\n";
      ok = false;
    }
    report.add_row()
        .str("kind", "tuner")
        .str("scenario", scenarios[s].name)
        .str("topology", scenarios[s].topology)
        .str("policy", policy_string(chosen))
        .boolean("deviated", deviated)
        .num("default_seconds", actual_default[s])
        .num("auto_seconds", auto_seconds)
        .num("speedup", speedup, 3)
        .boolean("verified", true);
    tuner.add_row({scenarios[s].name, policy_string(chosen),
                   format_double(actual_default[s], 4),
                   format_double(auto_seconds, 4),
                   format_double(speedup, 3)});
  }
  tuner.print(std::cout);
  if (wins < 2) {
    std::cerr << "FAIL: tuner won >=10% on only " << wins
              << " scenarios (need >= 2)\n";
    ok = false;
  }
  std::cout << "tuner wins >= 10%: " << wins
            << " (every run serial-verified)\n";

  {
    auto& row = report.add_row().str("kind", "fit");
    std::span<const double> coef = cost.coefficients();
    for (std::size_t i = 0; i < coef.size(); ++i)
      row.num("c" + std::to_string(i), coef[i], 6);
    row.count("observations", static_cast<std::uint64_t>(training.size()))
        .num("median_abs_rel_error", med, 4)
        .count("tuner_wins", wins);
  }
  if (!ok) return 1;
  report.write(jade::bench::json_out_path(argc, argv, "BENCH_model.json"));
  return 0;
}
