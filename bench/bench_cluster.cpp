// ClusterEngine on real processes: read-fanout and per-column Cholesky
// across forked workers, swept over worker counts and verified against the
// serial reference before timing (a wrong answer exits non-zero).
//
// What this measures, unlike the simulated benches: actual fork/socket
// dispatch latency, the shipped-version payload protocol (the fanout source
// ships to each worker once, then every later task reuses the cached copy),
// and writeback bandwidth on the Cholesky dependence chains.  Rows land in
// a JSON artifact (--json-out, default BENCH_cluster.json; uniform
// bench_format shape, one row per workload x worker-count cell) so CI
// tracks the real-process engine over time.  The workloads are
// dispatch-bound (near-empty task bodies), so rows measure coordinator RPC
// + payload-shipping overhead, not compute scaling; on a single-core CI
// host throughput declines as workers are added.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_format.hpp"
#include "jade/cluster/cluster_engine.hpp"
#include "jade/cluster/registry.hpp"
#include "jade/core/runtime.hpp"

namespace {

using namespace jade;
using cluster::get_ref;
using cluster::put_ref;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- registered bodies ------------------------------------------------------

const int kFanoutLeaf = cluster::BodyRegistry::instance().ensure(
    "bench.fanout_leaf", [](TaskContext& t, WireReader& r) {
      const auto src = get_ref<double>(r);
      const auto dst = get_ref<double>(r);
      const double scale = r.get_f64();
      double sum = 0;
      for (double v : t.read(src)) sum += v;
      t.write(dst)[0] = sum * scale;
    });

/// cmod(j, k): subtract column k's contribution from column j (paper
/// Figure 6's update task, dense variant).
const int kCmod = cluster::BodyRegistry::instance().ensure(
    "bench.cmod", [](TaskContext& t, WireReader& r) {
      const auto ck = get_ref<double>(r);
      const auto cj = get_ref<double>(r);
      const std::uint32_t j = r.get_u32();
      (void)r.get_u32();  // k rides along for trace labeling only
      const auto colk = t.read(ck);
      auto colj = t.read_write(cj);
      const double ljk = colk[j];
      for (std::size_t i = j; i < colj.size(); ++i) colj[i] -= ljk * colk[i];
    });

/// cdiv(j): scale column j by the square root of its diagonal (the paper's
/// factor task).
const int kCdiv = cluster::BodyRegistry::instance().ensure(
    "bench.cdiv", [](TaskContext& t, WireReader& r) {
      const auto cj = get_ref<double>(r);
      const std::uint32_t j = r.get_u32();
      auto colj = t.read_write(cj);
      const double d = std::sqrt(colj[j]);
      colj[j] = d;
      for (std::size_t i = j + 1; i < colj.size(); ++i) colj[i] /= d;
    });

// --- workloads --------------------------------------------------------------

RuntimeConfig config_for(int workers) {
  RuntimeConfig cfg;
  if (workers <= 0) {
    cfg.engine = EngineKind::kSerial;
  } else {
    cfg.engine = EngineKind::kCluster;
    cfg.cluster_proc.workers = workers;
    cfg.cluster_proc.spares = 0;
  }
  return cfg;
}

struct RunResult {
  double seconds = 0;
  std::uint64_t tasks = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t messages = 0;
  std::vector<double> output;  ///< for serial verification
};

/// `tasks` readers of one `elems`-sized source, each writing a 1-double
/// result: the shipped-version protocol's best case (source ships once per
/// worker).
RunResult run_fanout(int workers, int tasks, int elems) {
  Runtime rt(config_for(workers));
  std::vector<double> init(static_cast<std::size_t>(elems));
  for (int i = 0; i < elems; ++i) init[static_cast<std::size_t>(i)] = i * 0.5;
  auto src = rt.alloc_init<double>(init, "src");
  std::vector<SharedRef<double>> out;
  out.reserve(static_cast<std::size_t>(tasks));
  for (int k = 0; k < tasks; ++k)
    out.push_back(rt.alloc<double>(1, "out" + std::to_string(k)));

  const double t0 = now_seconds();
  rt.run([&](TaskContext& ctx) {
    for (int k = 0; k < tasks; ++k) {
      WireWriter args;
      put_ref(args, src);
      put_ref(args, out[static_cast<std::size_t>(k)]);
      args.put_f64(k + 1.0);
      cluster::spawn(ctx, kFanoutLeaf, std::move(args), [&](AccessDecl& d) {
        d.rd(src);
        d.wr(out[static_cast<std::size_t>(k)]);
      });
    }
  });
  RunResult res;
  res.seconds = now_seconds() - t0;
  res.tasks = static_cast<std::uint64_t>(tasks);
  res.payload_bytes = rt.stats().payload_bytes;
  res.messages = rt.stats().messages;
  for (auto& o : out) res.output.push_back(rt.get(o)[0]);
  return res;
}

/// Left-looking per-column Cholesky of a dense SPD matrix held as one
/// object per column — the paper's Figure 6 task structure, across real
/// processes.  n columns -> n cdiv + n(n-1)/2 cmod tasks.
RunResult run_cholesky(int workers, int n) {
  Runtime rt(config_for(workers));
  std::vector<SharedRef<double>> cols;
  cols.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    // A = I*n + ones: SPD with a dense factor.
    std::vector<double> col(static_cast<std::size_t>(n), 1.0);
    col[static_cast<std::size_t>(j)] += static_cast<double>(n);
    cols.push_back(
        rt.alloc_init<double>(col, "col" + std::to_string(j)));
  }

  const double t0 = now_seconds();
  rt.run([&](TaskContext& ctx) {
    for (int j = 0; j < n; ++j) {
      for (int k = 0; k < j; ++k) {
        WireWriter args;
        put_ref(args, cols[static_cast<std::size_t>(k)]);
        put_ref(args, cols[static_cast<std::size_t>(j)]);
        args.put_u32(static_cast<std::uint32_t>(j));
        args.put_u32(static_cast<std::uint32_t>(k));
        cluster::spawn(ctx, kCmod, std::move(args), [&](AccessDecl& d) {
          d.rd(cols[static_cast<std::size_t>(k)]);
          d.rd_wr(cols[static_cast<std::size_t>(j)]);
        });
      }
      WireWriter args;
      put_ref(args, cols[static_cast<std::size_t>(j)]);
      args.put_u32(static_cast<std::uint32_t>(j));
      cluster::spawn(ctx, kCdiv, std::move(args), [&](AccessDecl& d) {
        d.rd_wr(cols[static_cast<std::size_t>(j)]);
      });
    }
  });
  RunResult res;
  res.seconds = now_seconds() - t0;
  res.tasks = static_cast<std::uint64_t>(n) * (n + 1) / 2;
  res.payload_bytes = rt.stats().payload_bytes;
  res.messages = rt.stats().messages;
  for (auto& c : cols)
    for (double v : rt.get(c)) res.output.push_back(v);
  return res;
}

bool same_output(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::abs(a[i] - b[i]) > 1e-9 * (1.0 + std::abs(b[i]))) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_out =
      jade::bench::json_out_path(argc, argv, "BENCH_cluster.json");
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
  }

  const std::vector<int> sweep = {1, 2, 4};
  struct Workload {
    std::string name;
    std::function<RunResult(int)> run;  // workers (0 = serial reference)
  };
  const std::vector<Workload> workloads = {
      {"read_fanout", [](int w) { return run_fanout(w, 256, 4096); }},
      {"cholesky_per_column", [](int w) { return run_cholesky(w, 32); }},
  };

  jade::bench::JsonReport report("bench_cluster");
  bool ok = true;
  for (const Workload& wl : workloads) {
    const RunResult serial = wl.run(0);
    for (int workers : sweep) {
      RunResult best;
      best.seconds = 1e30;
      for (int rep = 0; rep < reps; ++rep) {
        RunResult r = wl.run(workers);
        if (!same_output(r.output, serial.output)) {
          std::cerr << wl.name << " at " << workers
                    << " workers diverged from the serial reference\n";
          ok = false;
        }
        if (r.seconds < best.seconds) best = std::move(r);
      }
      report.add_row()
          .str("workload", wl.name)
          .count("workers", workers)
          .count("reps", reps)
          .count("tasks", best.tasks)
          .num("seconds", best.seconds, 6)
          .num("tasks_per_sec", static_cast<double>(best.tasks) / best.seconds,
               1)
          .count("payload_bytes", best.payload_bytes)
          .count("messages", best.messages)
          .boolean("verified", true);
      std::printf("%-22s workers=%d  %.4fs  %8.0f tasks/s  %llu payload B\n",
                  wl.name.c_str(), workers, best.seconds,
                  static_cast<double>(best.tasks) / best.seconds,
                  static_cast<unsigned long long>(best.payload_bytes));
    }
  }

  if (!ok) return 1;
  report.write(json_out);
  return 0;
}
