// Figure 9 — "Running Times for Liquid Water Simulation".
//
// The paper plots the running time of the same Jade LWS program (2197
// molecules) on three platforms — the Intel iPSC/860, the Mica network of
// Sparc ELCs, and the Stanford DASH — against processor count.  This
// harness regenerates the series in virtual time on the simulated
// platforms.  Expected shape (paper): all three fall with processor count;
// Mica starts highest (slow nodes, PVM overhead) and flattens first as the
// shared Ethernet saturates; DASH and the iPSC/860 keep scaling.
#include <iostream>

#include "jade/support/stats.hpp"
#include "lws_harness.hpp"

int main() {
  using namespace jade_bench;
  const auto wc = lws_config();
  const auto initial = jade::apps::make_water(wc);
  auto expect = initial;
  jade::apps::water_run_serial(wc, expect);

  std::cout << "=== Figure 9: LWS running times (virtual seconds), "
            << wc.molecules << " molecules, " << wc.timesteps
            << " timesteps ===\n";
  jade::TextTable table({"processors", "ipsc860", "mica", "dash"});
  const auto platforms = lws_platforms();
  for (int p : lws_machine_counts()) {
    std::vector<double> row{static_cast<double>(p)};
    for (const auto& platform : platforms)
      row.push_back(run_lws(wc, initial, expect, platform, p));
    table.add_row(row, 2);
  }
  table.print(std::cout);
  std::cout << "(result verified bit-identical to the serial execution on "
               "every platform/point)\n";
  return 0;
}
