// Figure 9 — "Running Times for Liquid Water Simulation".
//
// The paper plots the running time of the same Jade LWS program (2197
// molecules) on three platforms — the Intel iPSC/860, the Mica network of
// Sparc ELCs, and the Stanford DASH — against processor count.  This
// harness regenerates the series in virtual time on the simulated
// platforms.  Expected shape (paper): all three fall with processor count;
// Mica starts highest (slow nodes, PVM overhead) and flattens first as the
// shared Ethernet saturates; DASH and the iPSC/860 keep scaling.
#include <iostream>

#include "jade/ft/ft_stats.hpp"
#include "jade/support/stats.hpp"
#include "lws_harness.hpp"

#include "bench_format.hpp"

int main(int argc, char** argv) {
  using namespace jade_bench;
  const TraceRequest trace = trace_request(argc, argv);
  const auto wc = lws_config();
  const auto initial = jade::apps::make_water(wc);
  auto expect = initial;
  jade::apps::water_run_serial(wc, expect);

  std::cout << "=== Figure 9: LWS running times (virtual seconds), "
            << wc.molecules << " molecules, " << wc.timesteps
            << " timesteps ===\n";
  jade::TextTable table({"processors", "ipsc860", "mica", "dash"});
  jade::bench::JsonReport report("fig9_lws_times");
  const auto platforms = lws_platforms();
  double mica8 = 0;  // fault-free mica/8 duration, sizes the crash window
  for (int p : lws_machine_counts()) {
    std::vector<double> row{static_cast<double>(p)};
    for (const auto& platform : platforms) {
      // The traced representative run: mica/8, the point closest to the
      // paper's deployment (object motion, contention, and migration are all
      // visible there).
      const bool traced_run = platform.name == "mica" && p == 8;
      const double t = run_lws(wc, initial, expect, platform, p, {}, nullptr,
                               traced_run ? trace : TraceRequest{});
      if (platform.name == "mica" && p == 8) mica8 = t;
      row.push_back(t);
      report.add_row()
          .count("processors", p)
          .str("platform", platform.name)
          .num("virtual_seconds", t, 6)
          .boolean("serial_verified", true);
    }
    table.add_row(row, 2);
  }
  table.print(std::cout);
  std::cout << "(result verified bit-identical to the serial execution on "
               "every platform/point)\n";

  // The Mica point closest to the paper's deployment, re-run with the
  // fault-tolerance layer armed and two machines crashing mid-run: the
  // result is still serial-identical (verified inside run_lws) and the
  // recovery work is visible in the counters.
  jade::FaultConfig fault;
  fault.enabled = true;
  fault.auto_crashes = 2;
  fault.crash_window_begin = 0.2 * mica8;
  fault.crash_window_end = 0.8 * mica8;
  fault.drop_probability = 0.01;
  jade::RuntimeStats stats;
  const double faulty = run_lws(
      wc, initial, expect, {"mica", jade::presets::mica}, 8, fault, &stats);
  std::cout << "\n=== mica/8 with 2 crashes + 1% message loss: "
            << jade::format_double(faulty, 2)
            << " virtual seconds (result still serial-identical) ===\n";
  jade::fault_recovery_counters(stats).print(std::cout);
  report.add_row()
      .count("processors", 8)
      .str("platform", "mica+faults")
      .num("virtual_seconds", faulty, 6)
      .boolean("serial_verified", true);
  report.write(
      jade::bench::json_out_path(argc, argv, "BENCH_fig9_lws_times.json"));
  return 0;
}
