// Supplementary experiment: interconnect topology, isolated.
//
// The same nodes (iPSC/860-class) under four wire models — shared Ethernet
// bus, 2-D mesh, hypercube, ideal — running LWS.  The paper's Figure 9/10
// platforms differ in node speed AND network AND runtime overheads; this
// sweep changes only the network, showing how much of the Mica/iPSC gap is
// the wires alone.
#include <iostream>

#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"
#include "jade/support/stats.hpp"

#include "bench_format.hpp"

namespace {

jade::ClusterConfig with_net(jade::ClusterConfig base, jade::NetKind net) {
  base.net = net;
  // Equalize link parameters so ONLY the topology differs: same startup,
  // per-hop latency and link bandwidth for mesh and hypercube.
  base.mesh.startup = base.cube.startup;
  base.mesh.per_hop = base.cube.per_hop;
  base.mesh.bytes_per_second = base.cube.bytes_per_second;
  return base;
}

double run_lws(const jade::ClusterConfig& cluster,
               const jade::apps::WaterConfig& wc,
               const jade::apps::WaterState& initial) {
  jade::RuntimeConfig cfg;
  cfg.engine = jade::EngineKind::kSim;
  cfg.cluster = cluster;
  jade::Runtime rt(std::move(cfg));
  auto w = jade::apps::upload_water(rt, wc, initial);
  rt.run([&](jade::TaskContext& ctx) { jade::apps::water_run_jade(ctx, w); });
  return rt.sim_duration();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jade;
  apps::WaterConfig wc;
  wc.molecules = 1000;
  wc.groups = 40;
  wc.timesteps = 2;
  const auto initial = apps::make_water(wc);

  struct Shape {
    const char* name;
    NetKind net;
  };
  const Shape shapes[] = {
      {"shared-bus", NetKind::kSharedBus},
      {"mesh", NetKind::kMesh},
      {"hypercube", NetKind::kHypercube},
      {"ideal", NetKind::kIdeal},
  };

  std::cout << "=== topology isolation: LWS (" << wc.molecules
            << " molecules) on identical nodes, different wires ===\n";
  TextTable table({"machines", "shared-bus", "mesh", "hypercube", "ideal"});
  bench::JsonReport report("network_shapes");
  for (int p : {1, 4, 8, 16, 32}) {
    std::vector<double> row{static_cast<double>(p)};
    for (const Shape& s : shapes) {
      const double t =
          run_lws(with_net(presets::ipsc860(p), s.net), wc, initial);
      row.push_back(t);
      report.add_row()
          .count("machines", p)
          .str("net", s.name)
          .num("virtual_seconds", t, 6);
    }
    table.add_row(row, 3);
  }
  table.print(std::cout);
  std::cout << "(expected shape: bus saturates first; mesh trails the "
               "hypercube slightly at scale — its diameter grows as sqrt(n) "
               "vs log n; ideal bounds them all)\n";
  report.write(
      bench::json_out_path(argc, argv, "BENCH_network_shapes.json"));
  return 0;
}
