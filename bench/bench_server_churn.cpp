// JadeServer under sustained multi-tenant traffic.
//
// The paper's runtime serves one program per process; the server keeps one
// ThreadEngine resident and feeds it thousands of independent Jade programs.
// Three phases, each verified before it is recorded:
//
//   * concurrency_hold — opens and submits `--hold` sessions (default 1000)
//     whose graphs block on a host-side gate, proving the server sustains
//     that many concurrently live sessions on one engine, then releases the
//     gate and drains them all to kCompleted.
//
//   * churn — streams `--sessions` short programs (default 3000, 8
//     microtasks each) through a 256-slot admission window with a bounded
//     number outstanding, measuring sustained graph-submissions/sec,
//     steady-state tasks/sec, and p50/p99 submit-to-quiescence latency.
//
//   * teardown_under_load — cancels a quarter of a running wave mid-flight,
//     checks the victims land in kCancelled while bystanders complete, and
//     then runs a follow-up wave on the same engine to show forced teardown
//     left it serving.
//
// Results land in a JSON artifact (--json-out, default
// BENCH_server_churn.json) so CI can smoke-run and track them.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_format.hpp"
#include "jade/server/server.hpp"
#include "jade/support/stats.hpp"

namespace {

using namespace jade;
using server::JadeServer;
using server::ServerConfig;
using server::Session;
using server::SessionState;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

void die(const std::string& why) {
  std::cerr << "verification failed: " << why << "\n";
  std::exit(1);
}

ServerConfig thread_server(std::size_t max_active, std::size_t max_queued,
                           std::uint64_t quota_pool) {
  ServerConfig cfg;
  cfg.runtime.engine = EngineKind::kThread;
  cfg.runtime.threads = 4;
  cfg.admission.max_active_sessions = max_active;
  cfg.admission.max_queued_sessions = max_queued;
  cfg.quota_pool = quota_pool;
  return cfg;
}

struct HoldResult {
  int sessions = 0;
  std::size_t peak_active = 0;
  std::size_t peak_live = 0;
  double admit_submit_seconds = 0;
  double drain_seconds = 0;
  double p50 = 0;
  double p99 = 0;
};

/// Phase 1: every session's graph parks one task on a host gate, so all of
/// them are concurrently live on the engine at once.
HoldResult run_concurrency_hold(int sessions) {
  HoldResult r;
  r.sessions = sessions;
  JadeServer srv(thread_server(static_cast<std::size_t>(sessions) + 8, 0, 0));
  std::atomic<bool> release{false};
  std::vector<std::shared_ptr<Session>> held;
  held.reserve(static_cast<std::size_t>(sessions));

  const double t0 = now_seconds();
  for (int i = 0; i < sessions; ++i) {
    auto s = srv.open_session("hold" + std::to_string(i));
    if (s == nullptr) die("hold session rejected");
    s->submit([&release](TaskContext& ctx) {
      ctx.withonly([](AccessDecl&) {}, [&release](TaskContext&) {
        while (!release.load(std::memory_order_acquire))
          std::this_thread::yield();
      });
    });
    held.push_back(std::move(s));
  }
  r.admit_submit_seconds = now_seconds() - t0;

  r.peak_active = srv.active_sessions();
  for (const auto& s : held)
    if (!server::session_terminal(s->state())) ++r.peak_live;

  release.store(true, std::memory_order_release);
  const double t1 = now_seconds();
  std::vector<double> latencies;
  latencies.reserve(held.size());
  for (const auto& s : held) {
    if (s->wait() != SessionState::kCompleted) die("hold session not clean");
    latencies.push_back(s->stats().latency_seconds);
    s->close();
  }
  r.drain_seconds = now_seconds() - t1;
  if (srv.active_sessions() != 0) die("hold slots not released");
  r.p50 = percentile(latencies, 0.50);
  r.p99 = percentile(latencies, 0.99);
  return r;
}

struct ChurnResult {
  int sessions = 0;
  int tasks_per_session = 0;
  std::size_t max_active = 0;
  double wall_seconds = 0;
  double submissions_per_sec = 0;
  double tasks_per_sec = 0;
  double p50 = 0;
  double p99 = 0;
};

/// Phase 2: a stream of short tenant programs through a small admission
/// window; a bounded outstanding set applies host-side backpressure the way
/// a real front end would.
ChurnResult run_churn(int sessions, int tasks_per_session) {
  ChurnResult r;
  r.sessions = sessions;
  r.tasks_per_session = tasks_per_session;
  r.max_active = 256;
  JadeServer srv(thread_server(r.max_active, 2048, 2048));

  struct InFlight {
    std::shared_ptr<Session> session;
    SharedRef<std::int64_t> counter;
  };
  std::deque<InFlight> outstanding;
  const std::size_t kWindow = 512;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(sessions));
  std::uint64_t total_tasks = 0;

  auto retire_front = [&] {
    InFlight f = std::move(outstanding.front());
    outstanding.pop_front();
    if (f.session->wait() != SessionState::kCompleted)
      die("churn session not clean");
    if (f.session->get(f.counter)[0] != tasks_per_session)
      die("churn counter mismatch");
    const auto st = f.session->stats();
    total_tasks += st.tasks_created;
    latencies.push_back(st.latency_seconds);
    f.session->close();
  };

  const double t0 = now_seconds();
  for (int i = 0; i < sessions; ++i) {
    while (outstanding.size() >= kWindow) retire_front();
    auto s = srv.open_session("churn" + std::to_string(i));
    if (s == nullptr) die("churn session rejected");
    auto ctr = s->alloc<std::int64_t>(1, "ctr");
    const int n = tasks_per_session;
    s->submit([ctr, n](TaskContext& ctx) {
      for (int k = 0; k < n; ++k) {
        ctx.withonly([&](AccessDecl& d) { d.cm(ctr); },
                     [ctr](TaskContext& t) { t.commute(ctr)[0] += 1; });
      }
    });
    outstanding.push_back({std::move(s), ctr});
  }
  while (!outstanding.empty()) retire_front();
  r.wall_seconds = now_seconds() - t0;
  r.submissions_per_sec = sessions / r.wall_seconds;
  r.tasks_per_sec = static_cast<double>(total_tasks) / r.wall_seconds;
  r.p50 = percentile(latencies, 0.50);
  r.p99 = percentile(latencies, 0.99);
  return r;
}

struct TeardownResult {
  int sessions = 0;
  int cancelled = 0;
  int completed = 0;
  int followup_sessions = 0;
  double followup_wall_seconds = 0;
};

/// Phase 3: forced teardown of a quarter of a running wave, then a
/// follow-up wave on the very same engine.
TeardownResult run_teardown(int sessions) {
  TeardownResult r;
  r.sessions = sessions;
  JadeServer srv(thread_server(static_cast<std::size_t>(sessions) + 8, 0, 0));
  std::vector<std::shared_ptr<Session>> wave;
  wave.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    auto s = srv.open_session("mix" + std::to_string(i));
    if (s == nullptr) die("teardown session rejected");
    const bool victim = (i % 4) == 0;
    TenantCtl* ctl = &s->ctl();
    if (victim) {
      // Spawns until cancelled: teardown must interrupt it mid-stream.
      s->submit([ctl](TaskContext& ctx) {
        for (int k = 0;
             k < 100000 && !ctl->cancelled.load(std::memory_order_relaxed);
             ++k) {
          ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {});
        }
      });
    } else {
      s->submit([](TaskContext& ctx) {
        for (int k = 0; k < 8; ++k)
          ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {});
      });
    }
    wave.push_back(std::move(s));
  }
  for (int i = 0; i < sessions; i += 4)
    wave[static_cast<std::size_t>(i)]->cancel();
  for (int i = 0; i < sessions; ++i) {
    const SessionState st = wave[static_cast<std::size_t>(i)]->wait();
    if ((i % 4) == 0) {
      if (st != SessionState::kCancelled) die("victim not cancelled");
      ++r.cancelled;
    } else {
      if (st != SessionState::kCompleted) die("bystander disturbed");
      ++r.completed;
    }
    wave[static_cast<std::size_t>(i)]->close();
  }

  r.followup_sessions = sessions / 4;
  const double t0 = now_seconds();
  std::vector<std::shared_ptr<Session>> follow;
  for (int i = 0; i < r.followup_sessions; ++i) {
    auto s = srv.open_session("follow" + std::to_string(i));
    if (s == nullptr) die("follow-up session rejected");
    s->submit([](TaskContext& ctx) {
      for (int k = 0; k < 8; ++k)
        ctx.withonly([](AccessDecl&) {}, [](TaskContext&) {});
    });
    follow.push_back(std::move(s));
  }
  for (const auto& s : follow) {
    if (s->wait() != SessionState::kCompleted)
      die("engine not serving after teardown");
    s->close();
  }
  r.followup_wall_seconds = now_seconds() - t0;
  return r;
}

/// Uniform bench_format rows, one per phase (keyed by "phase"); the
/// hardware core count rides on every row so artifacts stay comparable
/// across hosts.
void write_json(const std::string& path, const HoldResult& h,
                const ChurnResult& c, const TeardownResult& t) {
  const auto cores =
      static_cast<std::uint64_t>(std::thread::hardware_concurrency());
  jade::bench::JsonReport report("bench_server_churn");
  report.add_row()
      .str("phase", "concurrency_hold")
      .count("hardware_cores", cores)
      .count("sessions", h.sessions)
      .count("peak_active", static_cast<std::uint64_t>(h.peak_active))
      .count("peak_live", static_cast<std::uint64_t>(h.peak_live))
      .num("admit_submit_seconds", h.admit_submit_seconds, 4)
      .num("admissions_per_sec", h.sessions / h.admit_submit_seconds, 1)
      .num("drain_seconds", h.drain_seconds, 4)
      .num("latency_p50_s", h.p50, 4)
      .num("latency_p99_s", h.p99, 4);
  report.add_row()
      .str("phase", "churn")
      .count("hardware_cores", cores)
      .count("sessions", c.sessions)
      .count("tasks_per_session", c.tasks_per_session)
      .count("max_active", static_cast<std::uint64_t>(c.max_active))
      .num("wall_seconds", c.wall_seconds, 4)
      .num("submissions_per_sec", c.submissions_per_sec, 1)
      .num("tasks_per_sec", c.tasks_per_sec, 1)
      .num("latency_p50_s", c.p50, 5)
      .num("latency_p99_s", c.p99, 5);
  report.add_row()
      .str("phase", "teardown_under_load")
      .count("hardware_cores", cores)
      .count("sessions", t.sessions)
      .count("cancelled", t.cancelled)
      .count("completed", t.completed)
      .count("followup_sessions", t.followup_sessions)
      .num("followup_wall_seconds", t.followup_wall_seconds, 4);
  report.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      jade::bench::json_out_path(argc, argv, "BENCH_server_churn.json");
  int hold = 1000;
  int sessions = 3000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hold") == 0 && i + 1 < argc)
      hold = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc)
      sessions = std::atoi(argv[++i]);
  }

  std::cout << "=== JadeServer sustained-traffic benchmark ===\n";

  const HoldResult h = run_concurrency_hold(hold);
  std::cout << "--- concurrency hold: " << h.sessions << " sessions ---\n";
  TextTable ht({"metric", "value"});
  ht.add_row({"peak live sessions", std::to_string(h.peak_live)});
  ht.add_row({"admit+submit s", format_double(h.admit_submit_seconds, 4)});
  ht.add_row({"admissions/sec",
              format_double(h.sessions / h.admit_submit_seconds, 0)});
  ht.add_row({"drain s", format_double(h.drain_seconds, 4)});
  ht.add_row({"latency p99 s", format_double(h.p99, 4)});
  ht.print(std::cout);

  const ChurnResult c = run_churn(sessions, 8);
  std::cout << "--- churn: " << c.sessions << " sessions x "
            << c.tasks_per_session << " tasks ---\n";
  TextTable ct({"metric", "value"});
  ct.add_row({"wall s", format_double(c.wall_seconds, 4)});
  ct.add_row({"submissions/sec", format_double(c.submissions_per_sec, 0)});
  ct.add_row({"tasks/sec", format_double(c.tasks_per_sec, 0)});
  ct.add_row({"latency p50 s", format_double(c.p50, 5)});
  ct.add_row({"latency p99 s", format_double(c.p99, 5)});
  ct.print(std::cout);

  const TeardownResult t = run_teardown(400);
  std::cout << "--- teardown under load: " << t.sessions << " sessions, "
            << t.cancelled << " cancelled mid-run, " << t.completed
            << " completed, " << t.followup_sessions
            << " follow-ups served in "
            << format_double(t.followup_wall_seconds, 4) << " s ---\n";

  write_json(json_path, h, c, t);
  std::cout << "(all phases verified; results recorded in " << json_path
            << ")\n";
  return 0;
}
