// Shared harness for the Figure 9/10 LWS experiments: runs the same Jade
// water-simulation program on a platform preset with a given machine count
// and returns the virtual running time, verifying the result against the
// serial reference.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "jade/apps/water.hpp"
#include "jade/mach/presets.hpp"

#include "bench_trace.hpp"

namespace jade_bench {

struct LwsPlatform {
  std::string name;
  jade::ClusterConfig (*make)(int);
};

inline std::vector<LwsPlatform> lws_platforms() {
  return {{"ipsc860", jade::presets::ipsc860},
          {"mica", jade::presets::mica},
          {"dash", jade::presets::dash}};
}

/// The paper's LWS configuration: 2197 molecules; group count fixed across
/// machine counts so the task structure is identical for every point.
inline jade::apps::WaterConfig lws_config(int molecules = 2197) {
  jade::apps::WaterConfig c;
  c.molecules = molecules;
  c.groups = 52;
  c.timesteps = 2;
  return c;
}

/// Runs LWS and returns virtual seconds; verifies against `expect`.
/// `fault` arms the ft/ subsystem (message-passing platforms only); the
/// run's full statistics land in `*stats_out` when given.  A non-empty
/// `trace` traces the run and exports Chrome JSON to `trace.path`.
inline double run_lws(const jade::apps::WaterConfig& wc,
                      const jade::apps::WaterState& initial,
                      const jade::apps::WaterState& expect,
                      const LwsPlatform& platform, int machines,
                      const jade::FaultConfig& fault = {},
                      jade::RuntimeStats* stats_out = nullptr,
                      const TraceRequest& trace = {}) {
  jade::RuntimeConfig cfg;
  cfg.engine = jade::EngineKind::kSim;
  cfg.cluster = platform.make(machines);
  cfg.fault = fault;
  apply_trace(trace, cfg);
  jade::Runtime rt(std::move(cfg));
  auto w = jade::apps::upload_water(rt, wc, initial);
  rt.run([&](jade::TaskContext& ctx) { jade::apps::water_run_jade(ctx, w); });
  const auto got = jade::apps::download_water(rt, w);
  if (got.pos != expect.pos) {
    std::fprintf(stderr, "LWS result mismatch on %s/%d\n",
                 platform.name.c_str(), machines);
    std::exit(1);
  }
  if (stats_out != nullptr) *stats_out = rt.stats();
  write_trace(trace, rt);
  return rt.sim_duration();
}

inline std::vector<int> lws_machine_counts() { return {1, 2, 4, 8, 16, 32}; }

}  // namespace jade_bench
