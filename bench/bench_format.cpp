// Heterogeneous data-format conversion microbenchmarks (Sections 5, 6.1):
// byte-order conversion throughput by scalar type and layout, and the
// control-message wire format.
#include <benchmark/benchmark.h>

#include <vector>

#include "jade/types/type_desc.hpp"
#include "jade/types/wire.hpp"

namespace {

using namespace jade;

void BM_ConvertF64Array(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  auto desc = TypeDescriptor::array_of<double>(count);
  std::vector<std::byte> data(desc.byte_size(), std::byte{42});
  for (auto _ : state) {
    convert_representation(data, desc, Endian::kLittle, Endian::kBig);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(desc.byte_size()));
}
BENCHMARK(BM_ConvertF64Array)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ConvertI16Array(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  auto desc = TypeDescriptor::array(ScalarKind::kInt16, count);
  std::vector<std::byte> data(desc.byte_size(), std::byte{1});
  for (auto _ : state) {
    convert_representation(data, desc, Endian::kLittle, Endian::kBig);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(desc.byte_size()));
}
BENCHMARK(BM_ConvertI16Array)->Arg(1024)->Arg(65536);

void BM_ConvertMixedRecord(benchmark::State& state) {
  // A struct-like layout: header ints, a flag byte run, then doubles.
  const std::size_t repeat = static_cast<std::size_t>(state.range(0));
  std::vector<FieldDesc> fields;
  for (std::size_t i = 0; i < repeat; ++i) {
    fields.push_back({ScalarKind::kInt32, 4});
    fields.push_back({ScalarKind::kUInt8, 8});
    fields.push_back({ScalarKind::kFloat64, 6});
  }
  TypeDescriptor desc(std::move(fields));
  std::vector<std::byte> data(desc.byte_size(), std::byte{7});
  for (auto _ : state) {
    convert_representation(data, desc, Endian::kBig, Endian::kLittle);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(desc.byte_size()));
}
BENCHMARK(BM_ConvertMixedRecord)->Arg(16)->Arg(256);

void BM_OrderInvariantFastPath(benchmark::State& state) {
  auto desc = TypeDescriptor::bytes(1 << 20);
  std::vector<std::byte> data(desc.byte_size(), std::byte{9});
  for (auto _ : state) {
    const std::size_t n =
        convert_representation(data, desc, Endian::kLittle, Endian::kBig);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_OrderInvariantFastPath);

void BM_WireWriteControlMessage(benchmark::State& state) {
  for (auto _ : state) {
    WireWriter w;
    w.put_u32(7);                  // message kind
    w.put_u64(0x123456789abcull);  // object id
    w.put_u32(2);                  // source machine
    w.put_u32(5);                  // destination machine
    w.put_u64(4096);               // payload size
    w.put_string("col97");
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireWriteControlMessage);

void BM_WireRoundTrip(benchmark::State& state) {
  WireWriter w;
  for (int i = 0; i < 64; ++i) {
    w.put_u64(static_cast<std::uint64_t>(i) * 977);
    w.put_f64(i * 0.125);
  }
  const auto bytes = w.bytes();
  for (auto _ : state) {
    WireReader r(bytes);
    double acc = 0;
    while (!r.done()) {
      acc += static_cast<double>(r.get_u64());
      acc += r.get_f64();
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_WireRoundTrip);

}  // namespace
