#!/usr/bin/env python3
"""Proves the tagged SoA kernel loops actually auto-vectorize.

Recompiles src/jade/apps/kernels_soa.cpp exactly as the build does
(-O3 -fno-math-errno) with -fopt-info-vec, then maps the vectorizer's
"loop vectorized" report lines back to the `// VEC:<tag>` markers in the
source.  Each marker sits on the line directly above a JADE_VEC_LOOP
annotation; a tag passes if the compiler reports a vectorized loop within
a few lines below its marker (the loop the pragma governs).

Exit status is non-zero — with the missing tags named — if any marked loop
stayed scalar, so CI fails closed when a future edit quietly breaks
vectorization (e.g. reintroducing a branch, an aliasing pointer, or an
errno-visible libm call).

Usage: tools/check_vectorization.py [--cxx g++] [--repo PATH] [-v]
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

SOURCE = "src/jade/apps/kernels_soa.cpp"
# Must match the per-file options in src/CMakeLists.txt.
FLAGS = ["-std=c++20", "-O3", "-fno-math-errno", "-c", "-o", "/dev/null"]
# The vectorized loop the pragma governs must be reported within this many
# lines below the VEC marker (marker, pragma line, `for` line, short body).
WINDOW = 8

# A marker is a whole-line `// VEC:tag` annotation; prose mentioning the
# convention (backticks, trailing words) must not match.
VEC_TAG = re.compile(r"^\s*//\s*VEC:([A-Za-z0-9_]+)\s*$")
# GCC: "kernels_soa.cpp:45:21: optimized: loop vectorized using ..."
# Clang: "kernels_soa.cpp:45:3: remark: vectorized loop ..."
REPORT = re.compile(r":(\d+):\d+:\s+(?:optimized|remark):.*vectoriz", re.I)


def find_tags(source_text):
    tags = []
    for lineno, line in enumerate(source_text.splitlines(), start=1):
        m = VEC_TAG.match(line)
        if m:
            tags.append((m.group(1), lineno))
    return tags


def vectorized_lines(compiler_output):
    lines = set()
    for line in compiler_output.splitlines():
        m = REPORT.search(line)
        if m:
            lines.add(int(m.group(1)))
    return lines


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--cxx", default="g++")
    ap.add_argument("--repo", default=None,
                    help="repo root (default: this script's grandparent)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    repo = Path(args.repo) if args.repo else Path(__file__).resolve().parent.parent
    src = repo / SOURCE
    if not src.exists():
        sys.exit(f"missing {src}")

    tags = find_tags(src.read_text())
    if not tags:
        sys.exit(f"no // VEC: markers found in {SOURCE} — nothing to check")

    cmd = [args.cxx, *FLAGS, "-I", str(repo / "src"),
           "-fopt-info-vec", str(src)]
    if "clang" in args.cxx:
        cmd = [args.cxx, *FLAGS, "-I", str(repo / "src"),
               "-Rpass=loop-vectorize", str(src)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    report = proc.stderr + proc.stdout
    if proc.returncode != 0:
        print(report, file=sys.stderr)
        sys.exit(f"compilation failed: {' '.join(cmd)}")

    hits = vectorized_lines(report)
    if args.verbose:
        print(f"vectorizer reported lines: {sorted(hits)}")

    failed = []
    for tag, lineno in tags:
        window = range(lineno, lineno + WINDOW + 1)
        if any(h in window for h in hits):
            print(f"  ok   VEC:{tag} (line {lineno})")
        else:
            print(f"  FAIL VEC:{tag} (line {lineno}): no vectorized loop "
                  f"reported in lines {lineno}..{lineno + WINDOW}")
            failed.append(tag)

    if failed:
        print(f"\n{len(failed)} tagged loop(s) did not vectorize: "
              f"{', '.join(failed)}", file=sys.stderr)
        print("full vectorizer report:", file=sys.stderr)
        print(report, file=sys.stderr)
        sys.exit(1)
    print(f"all {len(tags)} tagged loops vectorized ({args.cxx})")


if __name__ == "__main__":
    main()
